// sched::replay — in-engine replay validation of the cluster scheduler's
// profile-table predictions: plan conversion, the prediction-vs-replay
// tolerance contract, migration-bytes parity with the mall:: controller,
// and bit-identity across replay concurrency.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/cluster.hpp"
#include "sched/replay.hpp"

namespace dps::sched {
namespace {

JobClass luTiny() {
  JobClass lu;
  lu.name = "lu-tiny";
  lu.app = AppKind::Lu;
  lu.lu.n = 64;
  lu.lu.r = 8;
  lu.lu.workers = 4;
  lu.lu.seed = 3;
  return lu;
}

JobClass jacobiTiny() {
  JobClass ja;
  ja.name = "jacobi-tiny";
  ja.app = AppKind::Jacobi;
  ja.jacobi.rows = 64;
  ja.jacobi.cols = 64;
  ja.jacobi.sweeps = 6;
  ja.jacobi.workers = 4;
  return ja;
}

/// One hand-built single-job "cluster result" whose allocation history is
/// exactly `allocs` — the minimal fixture for replaying a known plan.
struct HandRolled {
  Workload workload;
  JobProfileTable table;
  ClusterMetrics metrics;

  explicit HandRolled(const std::vector<std::int32_t>& allocs)
      : table(JobProfileTable::build({luTiny()}, 4, {}, 1)) {
    workload.cfg.classes = {luTiny()};
    workload.cfg.seed = 1;
    workload.jobs = {Job{0, 0, 0.0}};
    const ClassProfile& profile = table.of(0);
    JobOutcome out;
    out.id = 0;
    out.klass = profile.name;
    out.allocs = allocs;
    double t = 0;
    for (std::size_t p = 0; p < allocs.size(); ++p) {
      t += profile.at(allocs[p]).phaseSec[p];
      if (p + 1 < allocs.size() && allocs[p + 1] != allocs[p]) {
        out.reallocations++;
        out.migratedBytes += profile.migrationBytes(static_cast<std::int32_t>(p) + 1, allocs[p],
                                                    allocs[p + 1]);
      }
    }
    out.startSec = 0;
    out.finishSec = t;
    metrics.policy = "hand-rolled";
    metrics.nodes = 4;
    metrics.seed = 1;
    metrics.jobs = {out};
  }
};

TEST(PlanFromHistoryTest, ShrinkAndGrowStepsWithLifoReadd) {
  const auto plan = planFromHistory({4, 4, 2, 2, 4, 4, 1, 1});
  ASSERT_EQ(plan.steps.size(), 2u);
  ASSERT_EQ(plan.grows.size(), 1u);
  EXPECT_EQ(plan.steps[0].afterIteration, 2);
  EXPECT_EQ(plan.steps[0].threads, (std::vector<std::int32_t>{3, 2}));
  EXPECT_EQ(plan.grows[0].afterIteration, 4);
  // Most recently removed come back first: the active set stays a prefix.
  EXPECT_EQ(plan.grows[0].threads, (std::vector<std::int32_t>{2, 3}));
  EXPECT_EQ(plan.steps[1].afterIteration, 6);
  EXPECT_EQ(plan.steps[1].threads, (std::vector<std::int32_t>{3, 2, 1}));
}

TEST(PlanFromHistoryTest, HistoryStartingBelowItsMaximumRemovesAtIterationZero) {
  const auto plan = planFromHistory({2, 2, 4, 4});
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].afterIteration, 0);
  EXPECT_EQ(plan.steps[0].threads, (std::vector<std::int32_t>{3, 2}));
  ASSERT_EQ(plan.grows.size(), 1u);
  EXPECT_EQ(plan.grows[0].afterIteration, 2);
  EXPECT_EQ(plan.grows[0].threads, (std::vector<std::int32_t>{2, 3}));
  EXPECT_TRUE(planFromHistory({4, 4, 4}).empty());
}

TEST(ReplayTest, SingleJobWithoutReallocationMatchesPredictionWithinTolerance) {
  // A lone job is admitted at its fair share (= its maximum) and never
  // reallocated, so the replay is the very simulation its profile was
  // sliced from: the prediction must match to SimTime quantization.  This
  // is the dps_cluster --replay acceptance contract.
  WorkloadConfig wcfg;
  wcfg.seed = 1;
  wcfg.jobCount = 1;
  wcfg.arrivalRatePerSec = 1.0;
  wcfg.classes = {luTiny()};
  const auto wl = Workload::generate(wcfg, 4);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig ccfg;
  ccfg.nodes = 4;
  Equipartition policy;
  const auto m = simulateCluster(ccfg, wl, table, policy);
  ASSERT_EQ(m.jobs.size(), 1u);
  ASSERT_EQ(m.jobs[0].reallocations, 0);

  const auto rep = replaySchedule(m, wl, table, ReplaySettings{});
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].mode, ReplayMode::Static);
  EXPECT_GT(rep.jobs[0].replayedSec, 0.0);
  EXPECT_LT(std::abs(rep.jobs[0].makespanError()), 1e-6); // stated tolerance
  EXPECT_EQ(rep.jobs[0].predictedBytes, 0.0);
  EXPECT_EQ(rep.jobs[0].replayedBytes, 0.0);
  EXPECT_EQ(rep.replayed, 1);
  EXPECT_EQ(rep.unsupported, 0);
  EXPECT_LT(rep.maxAbsMakespanError, 1e-6);
}

TEST(ReplayTest, ShrinkAndGrowBytesMatchTheControllerExactly) {
  // The model parity contract behind ClassProfile::migrationBytes: on a
  // history whose ceil-shares work out evenly, the scheduler's predicted
  // bytes equal the controller's actual per-direction counters bit-for-bit.
  const HandRolled fixture({4, 4, 2, 2, 2, 2, 4, 4});
  const auto rep = replaySchedule(fixture.metrics, fixture.workload, fixture.table,
                                  ReplaySettings{});
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].mode, ReplayMode::Controller);
  EXPECT_GT(rep.jobs[0].replayedBytes, 0.0);
  EXPECT_NEAR(rep.jobs[0].replayedBytes, rep.jobs[0].predictedBytes, 1.0);
  // 4 -> 2 moves the removed workers' 4 columns; 2 -> 4 at phase 6 moves
  // the single unfactored column twice (it hops across both re-added
  // workers): 6 column blocks of n*r doubles in total.
  const double colBytes = fixture.table.of(0).stateBytes / 8;
  EXPECT_NEAR(rep.jobs[0].replayedBytes, 6 * colBytes, 1.0);
}

TEST(ReplayTest, GrowthAboveTheAdmittedAllocationReplays) {
  // A job admitted below its maximum (the scheduler's grow grants raised it
  // later) replays via a removal at iteration 0 — which must deactivate the
  // surplus workers without moving any state, exactly as admission did.
  const HandRolled fixture({2, 2, 2, 2, 4, 4, 4, 4});
  const auto rep = replaySchedule(fixture.metrics, fixture.workload, fixture.table,
                                  ReplaySettings{});
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].mode, ReplayMode::Controller);
  EXPECT_GT(rep.jobs[0].replayedSec, 0.0);
  // Only the grow migrates: 2 future columns pulled onto the re-added
  // workers; the iteration-0 shrink moved nothing.
  const double colBytes = fixture.table.of(0).stateBytes / 8;
  EXPECT_NEAR(rep.jobs[0].replayedBytes, 2 * colBytes, 1.0);
  EXPECT_NEAR(rep.jobs[0].replayedBytes, rep.jobs[0].predictedBytes, 1.0);
}

TEST(ReplayTest, BitIdenticalAtAnyReplayConcurrency) {
  // The determinism contract of the whole validation loop: fan the replays
  // over 4 pool workers and the report must be byte-identical to serial.
  WorkloadConfig wcfg;
  wcfg.seed = 2;
  wcfg.jobCount = 8;
  wcfg.arrivalRatePerSec = 2.0;
  wcfg.classes = {luTiny(), jacobiTiny()};
  const auto wl = Workload::generate(wcfg, 4);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig ccfg;
  ccfg.nodes = 4;
  EfficiencyShrink aggressive(0.9); // force reallocations into the histories
  const auto m = simulateCluster(ccfg, wl, table, aggressive);
  ASSERT_GT(m.reallocations, 0);

  ReplaySettings serial;
  serial.jobs = 1;
  ReplaySettings fanned;
  fanned.jobs = 4;
  const auto repSerial = replaySchedule(m, wl, table, serial);
  const auto repFanned = replaySchedule(m, wl, table, fanned);
  EXPECT_EQ(repSerial.jsonString(), repFanned.jsonString());
  bool controller = false;
  for (const auto& j : repSerial.jobs) controller = controller || j.mode == ReplayMode::Controller;
  EXPECT_TRUE(controller); // at least one full controller replay ran
}

} // namespace
} // namespace dps::sched
