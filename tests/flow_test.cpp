#include <gtest/gtest.h>

#include "flow/active_set.hpp"
#include "flow/graph.hpp"
#include "flow/ledger.hpp"
#include "flow/ops.hpp"
#include "flow/routing.hpp"
#include "test_graphs.hpp"

namespace dps::flow {
namespace {

OperationFactory noopLeaf() {
  return makeOp<LambdaLeaf>([](OpContext&, const serial::ObjectBase&) {});
}

// --- FlowGraph construction & validation ---

class GraphFixture : public ::testing::Test {
protected:
  FlowGraph g;
  GroupId grp = g.addGroup("grp");
};

TEST_F(GraphFixture, ValidSplitMergeGraphPasses) {
  auto s = g.addSplit("s", grp, noopLeaf());
  auto l = g.addLeaf("l", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.setEntry(s);
  g.connect(s, 0, l, routeTo(0));
  g.pair(s, 0, m);
  g.connect(l, 0, m, routeTo(0));
  g.connectOutput(m, 0);
  EXPECT_NO_THROW(g.validate());
}

TEST_F(GraphFixture, MissingEntryFails) {
  auto s = g.addSplit("s", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.connect(s, 0, m, routeTo(0));
  g.pair(s, 0, m);
  g.connectOutput(m, 0);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST_F(GraphFixture, UnpairedSplitFails) {
  auto s = g.addSplit("s", grp, noopLeaf());
  auto l = g.addLeaf("l", grp, noopLeaf());
  g.setEntry(s);
  g.connect(s, 0, l, routeTo(0));
  g.connectOutput(l, 0);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST_F(GraphFixture, UnpairedMergeFails) {
  auto s = g.addSplit("s", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.setEntry(s);
  g.connect(s, 0, m, routeTo(0));
  g.pair(s, 0, m);
  auto m2 = g.addMerge("orphan", grp, noopLeaf());
  g.connect(m, 0, m2, routeTo(0));
  g.connectOutput(m2, 0);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST_F(GraphFixture, CycleDetected) {
  auto s = g.addSplit("s", grp, noopLeaf());
  auto a = g.addLeaf("a", grp, noopLeaf());
  auto b = g.addLeaf("b", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.setEntry(s);
  g.pair(s, 0, m);
  g.connect(s, 0, a, routeTo(0));
  g.connect(a, 0, b, routeTo(0));
  g.connect(b, 0, a, routeTo(0)); // cycle a -> b -> a
  g.connectOutput(m, 0);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST_F(GraphFixture, UnreachableOpDetected) {
  auto s = g.addSplit("s", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.addLeaf("island", grp, noopLeaf()); // never connected
  g.setEntry(s);
  g.pair(s, 0, m);
  g.connect(s, 0, m, routeTo(0));
  g.connectOutput(m, 0);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST_F(GraphFixture, DoubleConnectSamePortFails) {
  auto a = g.addLeaf("a", grp, noopLeaf());
  auto b = g.addLeaf("b", grp, noopLeaf());
  g.connect(a, 0, b, routeTo(0));
  EXPECT_THROW(g.connect(a, 0, b, routeTo(0)), GraphError);
  EXPECT_THROW(g.connectOutput(a, 0), GraphError);
}

TEST_F(GraphFixture, LeafCannotOpenScopes) {
  auto a = g.addLeaf("a", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  EXPECT_THROW(g.pair(a, 0, m), GraphError);
}

TEST_F(GraphFixture, FlowControlRequiresPairedPort) {
  auto s = g.addSplit("s", grp, noopLeaf());
  EXPECT_THROW(g.setFlowControl(s, 0, FlowControlSpec{4}), GraphError);
  auto m = g.addMerge("m", grp, noopLeaf());
  g.pair(s, 0, m);
  EXPECT_NO_THROW(g.setFlowControl(s, 0, FlowControlSpec{4}));
}

TEST_F(GraphFixture, MultiScopeOpenerSupported) {
  auto s = g.addStream("s", grp, noopLeaf());
  auto m1 = g.addMerge("m1", grp, noopLeaf());
  auto m2 = g.addMerge("m2", grp, noopLeaf());
  g.pair(s, 0, m1);
  g.pair(s, 1, m2);
  EXPECT_EQ(g.closerOf(s, 0), m1);
  EXPECT_EQ(g.closerOf(s, 1), m2);
  EXPECT_EQ(g.closerOf(s, 2), kNoOp);
}

// --- Deployment ---

TEST(DeploymentTest, RoundRobinMapsThreads) {
  FlowGraph g;
  auto grp = g.addGroup("grp");
  auto s = g.addSplit("s", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.setEntry(s);
  g.pair(s, 0, m);
  g.connect(s, 0, m, routeTo(0));
  g.connectOutput(m, 0);

  auto d = Deployment::roundRobin(g, {5}, 2);
  EXPECT_EQ(d.nodeCount, 2);
  EXPECT_EQ(d.threadsIn(grp), 5);
  EXPECT_EQ(d.nodeOf({grp, 0}), 0);
  EXPECT_EQ(d.nodeOf({grp, 1}), 1);
  EXPECT_EQ(d.nodeOf({grp, 4}), 0);
  EXPECT_NO_THROW(d.validateAgainst(g));
}

TEST(DeploymentTest, BadMappingRejected) {
  FlowGraph g;
  auto grp = g.addGroup("grp");
  auto s = g.addSplit("s", grp, noopLeaf());
  auto m = g.addMerge("m", grp, noopLeaf());
  g.setEntry(s);
  g.pair(s, 0, m);
  g.connect(s, 0, m, routeTo(0));
  g.connectOutput(m, 0);

  Deployment d;
  d.nodeCount = 1;
  d.groupNodes = {{0, 7}}; // node 7 does not exist
  EXPECT_THROW(d.validateAgainst(g), ConfigError);
}

// --- Ledger ---

TEST(LedgerTest, CompletionRequiresCloseAndAbsorbs) {
  Ledger l;
  auto inst = l.openInstance(0, 0);
  l.recordEmission(inst);
  l.recordEmission(inst);
  EXPECT_FALSE(l.recordAbsorb(inst));
  EXPECT_FALSE(l.closeEmitter(inst)); // 1 of 2 absorbed
  EXPECT_TRUE(l.recordAbsorb(inst));  // completes now
  EXPECT_TRUE(l.isComplete(inst));
  l.erase(inst);
  EXPECT_EQ(l.liveInstances(), 0u);
}

TEST(LedgerTest, CloseAfterAllAbsorbedCompletesImmediately) {
  Ledger l;
  auto inst = l.openInstance(3, 0);
  l.recordEmission(inst);
  EXPECT_FALSE(l.recordAbsorb(inst)); // emitter still open
  EXPECT_TRUE(l.closeEmitter(inst));
}

TEST(LedgerTest, EmptyInstanceCloseRejected) {
  Ledger l;
  auto inst = l.openInstance(0, 0);
  EXPECT_THROW(l.closeEmitter(inst), Error);
}

TEST(LedgerTest, OverAbsorbRejected) {
  Ledger l;
  auto inst = l.openInstance(0, 0);
  l.recordEmission(inst);
  l.closeEmitter(inst);
  l.recordAbsorb(inst);
  EXPECT_THROW(l.recordAbsorb(inst), Error);
}

TEST(LedgerTest, FlowControlTokens) {
  Ledger l;
  auto inst = l.openInstance(0, /*maxInFlight=*/2);
  EXPECT_TRUE(l.canEmit(inst));
  l.recordEmission(inst);
  l.recordEmission(inst);
  EXPECT_FALSE(l.canEmit(inst));
  // Release: reports that an emitter might be unblocked.
  EXPECT_TRUE(l.recordAbsorb(inst) == false);
  EXPECT_TRUE(l.releaseToken(inst));
  EXPECT_TRUE(l.canEmit(inst));
  // A release below the limit is not an unblock event.
  l.recordAbsorb(inst);
  EXPECT_FALSE(l.releaseToken(inst));
}

TEST(LedgerTest, UnlimitedInstanceNeverBlocks) {
  Ledger l;
  auto inst = l.openInstance(0, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(l.canEmit(inst));
    l.recordEmission(inst);
  }
  EXPECT_FALSE(l.releaseToken(inst)); // no tokens in play
}

// --- ActiveSet ---

TEST(ActiveSetTest, DeactivateAndReactivate) {
  ActiveSet s(4);
  EXPECT_EQ(s.activeCount(), 4);
  EXPECT_TRUE(s.setActive(2, false));
  EXPECT_FALSE(s.setActive(2, false)); // already inactive
  EXPECT_EQ(s.activeCount(), 3);
  EXPECT_FALSE(s.isActive(2));
  const auto idx = s.indices();
  EXPECT_EQ(std::vector<std::int32_t>(idx.begin(), idx.end()),
            (std::vector<std::int32_t>{0, 1, 3}));
  EXPECT_TRUE(s.setActive(2, true));
  EXPECT_EQ(s.activeCount(), 4);
}

TEST(ActiveSetTest, CannotRemoveLastThread) {
  ActiveSet s(2);
  s.setActive(0, false);
  EXPECT_THROW(s.setActive(1, false), Error);
}

// --- Routing helpers ---

TEST(RoutingTest, RoundRobinActiveSkipsInactive) {
  test::Item obj;
  RouteContext rc;
  const std::int32_t active[] = {0, 2, 3};
  rc.dstActive = active;
  rc.dstGroupSize = 4;
  auto route = roundRobinActive();
  rc.emission = 0;
  EXPECT_EQ(route(rc, obj), 0);
  rc.emission = 1;
  EXPECT_EQ(route(rc, obj), 2);
  rc.emission = 2;
  EXPECT_EQ(route(rc, obj), 3);
  rc.emission = 3;
  EXPECT_EQ(route(rc, obj), 0);
}

TEST(RoutingTest, ByKeyStaticIgnoresAllocation) {
  test::Item obj;
  obj.value = 7;
  RouteContext rc;
  rc.dstGroupSize = 4;
  auto route = byKeyStatic([](const serial::ObjectBase& o) {
    return static_cast<std::uint64_t>(dynamic_cast<const test::Item&>(o).value);
  });
  EXPECT_EQ(route(rc, obj), 3); // 7 mod 4
}

TEST(RoutingTest, SameIndexEchoesSource) {
  test::Item obj;
  RouteContext rc;
  rc.srcThreadIndex = 5;
  EXPECT_EQ(sameIndex()(rc, obj), 5);
}

} // namespace
} // namespace dps::flow
