#include <gtest/gtest.h>

#include <vector>

#include "des/scheduler.hpp"
#include "support/error.hpp"

namespace dps::des {
namespace {

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(simEpoch() + milliseconds(3), [&] { order.push_back(3); });
  s.scheduleAt(simEpoch() + milliseconds(1), [&] { order.push_back(1); });
  s.scheduleAt(simEpoch() + milliseconds(2), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), simEpoch() + milliseconds(3));
}

TEST(SchedulerTest, FifoAmongEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.scheduleAt(simEpoch() + milliseconds(5), [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ScheduleAfterUsesNow) {
  Scheduler s;
  SimTime fired{};
  s.scheduleAfter(milliseconds(1), [&] {
    s.scheduleAfter(milliseconds(2), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, simEpoch() + milliseconds(3));
}

TEST(SchedulerTest, PastSchedulingThrows) {
  Scheduler s;
  s.scheduleAfter(milliseconds(2), [] {});
  s.run();
  EXPECT_THROW(s.scheduleAt(simEpoch() + milliseconds(1), [] {}), Error);
  EXPECT_THROW(s.scheduleAfter(milliseconds(-1), [] {}), Error);
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler s;
  bool fired = false;
  EventId id = s.scheduleAfter(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(id.pending());
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(id.pending());
  EXPECT_FALSE(s.cancel(id)); // double cancel reports false
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.firedCount(), 0u);
}

TEST(SchedulerTest, CancelFromInsideHandler) {
  Scheduler s;
  bool fired = false;
  EventId later = s.scheduleAfter(milliseconds(2), [&] { fired = true; });
  s.scheduleAfter(milliseconds(1), [&] { EXPECT_TRUE(s.cancel(later)); });
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, HandlerCanScheduleMore) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.scheduleAfter(milliseconds(1), chain);
  };
  s.scheduleAfter(milliseconds(1), chain);
  EXPECT_EQ(s.run(), 5u);
  EXPECT_EQ(s.now(), simEpoch() + milliseconds(5));
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    s.scheduleAt(simEpoch() + milliseconds(i), [&] { ++fired; });
  EXPECT_EQ(s.runUntil(simEpoch() + milliseconds(4)), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(s.now(), simEpoch() + milliseconds(4));
  EXPECT_EQ(s.pendingCount(), 6u);
  s.run();
  EXPECT_EQ(fired, 10);
}

TEST(SchedulerTest, RunUntilAdvancesClockOnEmptyQueue) {
  Scheduler s;
  s.runUntil(simEpoch() + milliseconds(7));
  EXPECT_EQ(s.now(), simEpoch() + milliseconds(7));
}

TEST(SchedulerTest, StepFiresExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.scheduleAfter(milliseconds(1), [&] { ++fired; });
  s.scheduleAfter(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, ResetClearsEverything) {
  Scheduler s;
  s.scheduleAfter(milliseconds(1), [] {});
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.now(), simEpoch());
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, ZeroDelayEventsKeepFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAfter(SimDuration::zero(), [&] {
    order.push_back(1);
    s.scheduleAfter(SimDuration::zero(), [&] { order.push_back(2); });
  });
  s.scheduleAfter(SimDuration::zero(), [&] { order.push_back(3); });
  s.run();
  // The nested zero-delay event lands after already queued ones at t=0.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SchedulerTest, ManyEventsStressOrdering) {
  Scheduler s;
  SimTime last = simEpoch();
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    const auto at = simEpoch() + nanoseconds((i * 7919) % 100000);
    s.scheduleAt(at, [&, at] {
      if (s.now() < last) monotonic = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace dps::des
