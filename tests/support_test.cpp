#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/fingerprint.hpp"
#include "support/histogram.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/time.hpp"

namespace dps {
namespace {

TEST(CsvTest, QuoteIsRfc4180) {
  EXPECT_EQ(csvQuote("plain"), "\"plain\"");
  EXPECT_EQ(csvQuote(""), "\"\"");
  EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvQuote("two\nlines"), "\"two\nlines\"");
}

TEST(TimeTest, ConstructorsAndConversions) {
  EXPECT_EQ(microseconds(1).count(), 1000);
  EXPECT_EQ(milliseconds(2).count(), 2000000);
  EXPECT_EQ(seconds(1.5).count(), 1500000000);
  EXPECT_DOUBLE_EQ(toSeconds(seconds(2.25)), 2.25);
  EXPECT_DOUBLE_EQ(toMillis(milliseconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(toMicros(microseconds(7)), 7.0);
}

TEST(TimeTest, ScaleRounds) {
  EXPECT_EQ(scale(nanoseconds(10), 0.25).count(), 3); // 2.5 rounds to 3
  EXPECT_EQ(scale(milliseconds(4), 0.5), milliseconds(2));
}

TEST(TimeTest, FormatAdaptsUnits) {
  EXPECT_EQ(formatDuration(seconds(62.31)), "62.310s");
  EXPECT_EQ(formatDuration(milliseconds(4)), "4.000ms");
  EXPECT_EQ(formatDuration(microseconds(9)), "9.000us");
  EXPECT_EQ(formatDuration(nanoseconds(42)), "42ns");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BelowIsUnbiasedEnough) {
  Rng r(11);
  std::vector<int> counts(5, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(5)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 5, kDraws / 50);
}

TEST(RngTest, NormalMomentsAreSane) {
  Rng r(13);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(RngTest, ExponentialMatchesDistributionShape) {
  Rng r(17);
  OnlineStats s;
  int beyondMean = 0;
  const double rate = 0.25; // mean 4, stddev 4
  for (int i = 0; i < 40000; ++i) {
    const double x = r.exponential(rate);
    EXPECT_GE(x, 0.0);
    s.add(x);
    beyondMean += x > 4.0;
  }
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_NEAR(s.stddev(), 4.0, 0.15);
  // P(X > mean) = 1/e for an exponential — a shape check the first two
  // moments alone would not catch.
  EXPECT_NEAR(beyondMean / 40000.0, std::exp(-1.0), 0.01);
  EXPECT_THROW(r.exponential(0.0), Error);
}

TEST(RngTest, PoissonMatchesMeanAndVariance) {
  Rng r(19);
  for (const double mean : {0.7, 6.0, 120.0}) { // product method + normal tail
    OnlineStats s;
    for (int i = 0; i < 30000; ++i) s.add(static_cast<double>(r.poisson(mean)));
    EXPECT_NEAR(s.mean(), mean, 0.05 * mean + 0.05) << mean;
    // Poisson signature: variance == mean.
    EXPECT_NEAR(s.variance(), mean, 0.1 * mean + 0.1) << mean;
  }
  EXPECT_THROW(r.poisson(-1.0), Error);
}

TEST(StatsTest, BasicMoments) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(StatsTest, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(StatsTest, PercentileRejectsEmpty) {
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(StatsTest, RelativeErrorAndWithin) {
  EXPECT_DOUBLE_EQ(relativeError(105, 100), 0.05);
  EXPECT_DOUBLE_EQ(relativeError(95, 100), -0.05);
  std::vector<double> errs{0.01, -0.03, 0.08, -0.2};
  EXPECT_DOUBLE_EQ(fractionWithin(errs, 0.05), 0.5);
  EXPECT_DOUBLE_EQ(fractionWithin(errs, 0.1), 0.75);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(-0.1, 0.1, 10); // bins of width 0.02
  h.add(0.0);                 // bin 5
  h.add(-0.099);              // bin 0
  h.add(0.5);                 // overflow -> last bin
  h.add(-0.5);                // underflow -> first bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(HistogramTest, ModeAndRender) {
  Histogram h(0, 10, 5);
  h.addAll({1, 1, 1, 7});
  EXPECT_EQ(h.modeBin(), 0u);
  const std::string out = h.render(20);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(TableTest, AlignmentAndFormatting) {
  Table t("My table");
  t.header({"name", "value"});
  t.row({"a", Table::num(1.5, 1)});
  t.row({"long-name", Table::pct(0.714, 1)});
  const std::string s = t.str();
  EXPECT_NE(s.find("My table"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("71.4%"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(CliTest, ParsesForms) {
  // `--key value` is greedy: a bare token after an option becomes its
  // value, so positionals must precede options or use `--key=value`.
  const char* argv[] = {"prog", "pos", "--alpha=3", "--beta", "4.5", "--gamma"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.integer("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.real("beta", 0.0), 4.5);
  EXPECT_TRUE(cli.flag("gamma"));
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "pos");
  cli.finish();
}

TEST(CliTest, UnknownOptionFailsFinish) {
  const char* argv[] = {"prog", "--bogus=1"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.finish(), ConfigError);
}

TEST(CliTest, BadIntegerThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.integer("n", 0), ConfigError);
}

TEST(CliTest, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.helpRequested());
  cli.str("opt", "default", "an option");
  EXPECT_NE(cli.helpText().find("--opt"), std::string::npos);
}

TEST(ErrorTest, HierarchyAndMessages) {
  try {
    throw GraphError("bad wiring");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("graph: bad wiring"), std::string::npos);
  }
  EXPECT_THROW(DPS_CHECK(false, "boom"), InternalError);
}

TEST(ThreadPoolTest, HardwareJobsIsPositive) { EXPECT_GE(ThreadPool::hardwareJobs(), 1u); }

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallelFor(pool, hits.size(),
              [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForResultsAreIndexOrdered) {
  // Work -> result ordering is by index, not completion order: each body
  // writes slot i, so the output is deterministic at any thread count.
  std::vector<std::size_t> out(100, 0);
  parallelFor(out.size(), 4, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, SerialFallbacksRunInline) {
  // jobs <= 1 and count <= 1 must not spawn anything: the body observes the
  // caller's thread id.
  const auto self = std::this_thread::get_id();
  int calls = 0;
  parallelFor(5, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    ++calls;
  });
  parallelFor(1, 8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    ++calls;
  });
  parallelFor(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 6);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndDrainCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    parallelFor(pool, 64, [&](std::size_t i) {
      if (i == 5) throw Error("boom at 5");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at 5"), std::string::npos);
  }
  EXPECT_LE(ran.load(), 63);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelFors) {
  ThreadPool pool(2);
  std::uint64_t total = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint64_t> out(50, 0);
    parallelFor(pool, out.size(), [&](std::size_t i) { out[i] = i + 1; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 10u * (50u * 51u / 2u));
}

TEST(ThreadPoolTest, WorkerlessPoolRunsInlineOnCaller) {
  // ThreadPool(jobs - 1) with jobs == 1: no workers, parallelFor degrades to
  // a serial loop on the caller, and submit() refuses (it would never run).
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 0u);
  const auto self = std::this_thread::get_id();
  int calls = 0;
  parallelFor(pool, 4, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    ++calls;
  });
  EXPECT_EQ(calls, 4);
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(done.load(), 8);
}

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject()
      .field("name", "a\"b")
      .field("n", 42)
      .field("x", 0.5)
      .field("on", true);
  w.key("list").beginArray().value(1).value("two").null().endArray();
  w.key("nested").beginObject().endObject();
  w.endObject();
  EXPECT_TRUE(w.closed());
  EXPECT_EQ(os.str(), "{\"name\":\"a\\\"b\",\"n\":42,\"x\":0.5,\"on\":true,"
                      "\"list\":[1,\"two\",null],\"nested\":{}}");
}

TEST(JsonWriterTest, StringLiteralsAreStringsNotBools) {
  std::ostringstream os;
  JsonWriter w(os);
  const char* s = "static";
  w.beginObject().field("mode", s).endObject();
  EXPECT_EQ(os.str(), "{\"mode\":\"static\"}");
}

TEST(JsonWriterTest, RawSplicesPreRenderedFragments) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject().field("a", 1);
  w.key("inner").raw("{\"pre\":true}");
  w.rawMembers("\"b\":2,\"c\":3");
  w.endObject();
  EXPECT_EQ(os.str(), "{\"a\":1,\"inner\":{\"pre\":true},\"b\":2,\"c\":3}");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginArray().value(1.0 / 3.0).endArray();
  EXPECT_EQ(os.str(), "[" + jsonDouble(1.0 / 3.0) + "]");
}

TEST(FingerprintTest, StableAndOrderSensitive) {
  Fingerprint a, b;
  a.add(std::uint64_t{1}).add(2.0).add(std::string_view("x"));
  b.add(std::uint64_t{1}).add(2.0).add(std::string_view("x"));
  EXPECT_EQ(a.value(), b.value());

  Fingerprint c;
  c.add(2.0).add(std::uint64_t{1}).add(std::string_view("x"));
  EXPECT_NE(a.value(), c.value());
}

TEST(FingerprintTest, TypeTagsSeparateEqualBitPatterns) {
  Fingerprint i, u;
  i.add(std::int64_t{7});
  u.add(std::uint64_t{7});
  EXPECT_NE(i.value(), u.value());

  // -0.0 and 0.0 compare equal, so they must fingerprint equal too.
  Fingerprint neg, pos;
  neg.add(-0.0);
  pos.add(0.0);
  EXPECT_EQ(neg.value(), pos.value());
}

TEST(FingerprintTest, StringBoundariesMatter) {
  Fingerprint ab_c, a_bc;
  ab_c.add(std::string_view("ab")).add(std::string_view("c"));
  a_bc.add(std::string_view("a")).add(std::string_view("bc"));
  EXPECT_NE(ab_c.value(), a_bc.value());
}

} // namespace
} // namespace dps
