// SimEngine semantics: analytic makespans, flow control, deadlock
// detection, determinism, markers and dynamic allocation.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "net/profile.hpp"
#include "test_graphs.hpp"

namespace dps::core {
namespace {

using test::buildBrokenFanout;
using test::buildFanout;
using test::FanoutSpec;
using test::Item;
using test::spreadDeployment;
using test::Sum;

/// Analytic profile: 1 ms latency, 1 MB/s, zero overheads.
net::PlatformProfile analyticProfile() {
  net::PlatformProfile p;
  p.name = "analytic";
  p.latency = milliseconds(1);
  p.bandwidthBytesPerSec = 1e6;
  p.perStepOverhead = SimDuration::zero();
  p.localDelivery = SimDuration::zero();
  p.cpuPerIncomingTransfer = 0.0;
  p.cpuPerOutgoingTransfer = 0.0;
  return p;
}

SimConfig analyticConfig() {
  SimConfig c;
  c.profile = analyticProfile();
  c.mode = ExecutionMode::Pdexec;
  return c;
}

/// Item payload size such that its envelope totals exactly 1000 bytes
/// (value 8 + vector length 8 + padding + 64 envelope).
constexpr std::size_t kPayloadFor1000 = 1000 - 8 - 8 - 64;

FanoutSpec analyticSpec() {
  FanoutSpec s;
  s.jobs = 1;
  s.workers = 1;
  s.splitCost = milliseconds(3);
  s.computeCost = milliseconds(5);
  s.mergeCost = milliseconds(7);
  s.payloadBytes = kPayloadFor1000;
  return s;
}

flow::Program program(const test::FanoutBuild& b, flow::Deployment d) {
  flow::Program p;
  p.graph = b.graph.get();
  p.deployment = std::move(d);
  p.inputs = b.inputs;
  return p;
}

TEST(EngineTest, SingleJobMakespanIsExact) {
  auto b = buildFanout(analyticSpec());
  SimEngine engine(analyticConfig());
  auto result = engine.run(program(b, spreadDeployment(b)));
  // split 3ms + transfer (1+1)ms + compute 5ms + transfer 2ms + merge 7ms.
  EXPECT_EQ(result.makespan, milliseconds(19));
  ASSERT_EQ(result.outputs.size(), 1u);
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.total, 0);
  EXPECT_EQ(sum.count, 1);
}

TEST(EngineTest, TwoJobsTwoWorkersPipelineExact) {
  auto spec = analyticSpec();
  spec.jobs = 2;
  spec.workers = 2;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  auto result = engine.run(program(b, spreadDeployment(b)));
  // Worked out by hand: second emission at 6ms, second absorb ends at 26ms
  // (see DESIGN notes in this test's derivation).
  EXPECT_EQ(result.makespan, milliseconds(26));
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.total, 2); // (0 + 1) doubled
  EXPECT_EQ(sum.count, 2);
  EXPECT_EQ(result.counters.steps, 8u); // 1 input + 2 emits + 2 leafs + 2 absorbs + 1 finalize
  EXPECT_EQ(result.counters.messages, 5u);
}

TEST(EngineTest, FlowControlSerializesEmissions) {
  auto spec = analyticSpec();
  spec.jobs = 2;
  spec.workers = 2;
  spec.fcLimit = 1;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  auto result = engine.run(program(b, spreadDeployment(b)));
  // Token for job 1 only frees when the merge absorbs job 0's result:
  // 19ms + emit 3 + transfer 2 + compute 5 + transfer 2 + absorb 7 = 38ms.
  EXPECT_EQ(result.makespan, milliseconds(38));
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.count, 2);
}

TEST(EngineTest, FlowControlWideEnoughBehavesLikeNone) {
  auto spec = analyticSpec();
  spec.jobs = 3;
  spec.workers = 3;
  auto noFc = buildFanout(spec);
  spec.fcLimit = 16;
  auto wideFc = buildFanout(spec);
  SimEngine e1(analyticConfig()), e2(analyticConfig());
  auto r1 = e1.run(program(noFc, spreadDeployment(noFc)));
  auto r2 = e2.run(program(wideFc, spreadDeployment(wideFc)));
  EXPECT_EQ(r1.makespan, r2.makespan);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto spec = analyticSpec();
  spec.jobs = 16;
  spec.workers = 3;
  auto b1 = buildFanout(spec);
  auto b2 = buildFanout(spec);
  SimEngine e1(analyticConfig()), e2(analyticConfig());
  auto r1 = e1.run(program(b1, spreadDeployment(b1)));
  auto r2 = e2.run(program(b2, spreadDeployment(b2)));
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.counters.steps, r2.counters.steps);
  EXPECT_EQ(r1.counters.messages, r2.counters.messages);
  EXPECT_EQ(r1.counters.networkBytes, r2.counters.networkBytes);
}

TEST(EngineTest, FidelityNoiseChangesWithSeedOnly) {
  auto spec = analyticSpec();
  spec.jobs = 8;
  spec.workers = 2;
  auto run = [&](std::uint64_t seed) {
    auto b = buildFanout(spec);
    SimConfig c = analyticConfig();
    c.fidelity.enabled = true;
    c.fidelity.seed = seed;
    SimEngine e(c);
    return e.run(program(b, spreadDeployment(b))).makespan;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(EngineTest, DeadlockDetectedAtQuiescence) {
  auto spec = analyticSpec();
  spec.jobs = 2;
  spec.workers = 2;
  auto b = buildBrokenFanout(spec);
  SimEngine engine(analyticConfig());
  EXPECT_THROW(engine.run(program(b, spreadDeployment(b))), Error);
}

TEST(EngineTest, MarkersReachHookInVirtualTimeOrder) {
  auto spec = analyticSpec();
  spec.jobs = 3;
  spec.workers = 1;
  spec.leafMarker = true;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  std::vector<std::pair<std::int64_t, SimTime>> seen;
  engine.setMarkerHook([&](const std::string& name, std::int64_t v, SimTime t) {
    EXPECT_EQ(name, "job");
    seen.emplace_back(v, t);
  });
  auto result = engine.run(program(b, spreadDeployment(b)));
  ASSERT_EQ(seen.size(), 3u);
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_GE(seen[i].second, seen[i - 1].second);
  // Markers also land in the trace.
  ASSERT_TRUE(result.trace);
  EXPECT_EQ(result.trace->markersNamed("job").size(), 3u);
}

TEST(EngineTest, DeactivationSteersRoundRobinRouting) {
  auto spec = analyticSpec();
  spec.jobs = 6;
  spec.workers = 2;
  spec.fcLimit = 1; // serialize emissions so the change lands between them
  spec.leafMarker = true;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  bool removed = false;
  const auto workersGroup = b.workers;
  engine.setMarkerHook([&](const std::string&, std::int64_t, SimTime) {
    if (!removed) {
      engine.deactivateThread(workersGroup, 1);
      removed = true;
    }
  });
  auto result = engine.run(program(b, spreadDeployment(b)));
  ASSERT_TRUE(result.trace);
  // After the first marker, everything routes to worker 0 (node 1).  At
  // most one job can have landed on worker 1 (node 2) before that.
  int node2Steps = 0;
  for (const auto& s : result.trace->steps())
    if (s.node == 2) ++node2Steps;
  EXPECT_LE(node2Steps, 1);
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.count, 6); // nothing lost
}

TEST(EngineTest, AllocationRecordsTrackNodeCount) {
  auto spec = analyticSpec();
  spec.jobs = 4;
  spec.workers = 2;
  spec.fcLimit = 1;
  spec.leafMarker = true;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  bool removed = false;
  const auto workersGroup = b.workers;
  engine.setMarkerHook([&](const std::string&, std::int64_t, SimTime) {
    if (!removed) {
      engine.deactivateThread(workersGroup, 1);
      removed = true;
      EXPECT_EQ(engine.allocatedNodes(), 2); // master node + worker 0
    }
  });
  auto result = engine.run(program(b, spreadDeployment(b)));
  ASSERT_TRUE(result.trace);
  const auto& allocs = result.trace->allocations();
  ASSERT_GE(allocs.size(), 2u);
  EXPECT_EQ(allocs.front().allocatedNodes, 3);
  EXPECT_EQ(allocs.back().allocatedNodes, 2);
}

TEST(EngineTest, TraceRecordsStepsAndTransfers) {
  auto spec = analyticSpec();
  spec.jobs = 2;
  spec.workers = 2;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  auto result = engine.run(program(b, spreadDeployment(b)));
  ASSERT_TRUE(result.trace);
  EXPECT_EQ(result.trace->steps().size(), result.counters.steps);
  EXPECT_EQ(result.trace->transfers().size(), 4u); // 2 out + 2 back
  EXPECT_EQ(result.trace->totalBytes(), result.counters.networkBytes);
  EXPECT_GT(result.trace->nodeBusyFraction(0, simEpoch(), simEpoch() + result.makespan), 0.0);
}

TEST(EngineTest, DirectExecutionRunsKernelsAndMeasures) {
  auto spec = analyticSpec();
  spec.jobs = 4;
  spec.workers = 2;
  // Charges still apply in DirectExec; wall measurement adds real time.
  auto b = buildFanout(spec);
  SimConfig c = analyticConfig();
  c.mode = ExecutionMode::DirectExec;
  SimEngine engine(c);
  auto result = engine.run(program(b, spreadDeployment(b)));
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.count, 4);
  // Measured durations push the makespan above the pure-model value.
  EXPECT_GT(result.makespan, SimDuration::zero());
}

TEST(EngineTest, RunIsRepeatableOnFreshEngines) {
  // Guards against state leaking between engine instances.
  auto spec = analyticSpec();
  spec.jobs = 5;
  spec.workers = 2;
  SimDuration first{};
  for (int i = 0; i < 3; ++i) {
    auto b = buildFanout(spec);
    SimEngine engine(analyticConfig());
    auto r = engine.run(program(b, spreadDeployment(b)));
    if (i == 0) first = r.makespan;
    else EXPECT_EQ(r.makespan, first);
  }
}

TEST(EngineTest, PerStepOverheadShiftsMakespan) {
  auto spec = analyticSpec();
  auto b1 = buildFanout(spec);
  auto b2 = buildFanout(spec);
  SimConfig withOverhead = analyticConfig();
  withOverhead.profile.perStepOverhead = microseconds(100);
  SimEngine e1(analyticConfig()), e2(withOverhead);
  auto r1 = e1.run(program(b1, spreadDeployment(b1)));
  auto r2 = e2.run(program(b2, spreadDeployment(b2)));
  // 5 steps on the critical path (input, emit, compute, absorb, finalize).
  EXPECT_EQ(r2.makespan - r1.makespan, microseconds(500));
}

TEST(EngineTest, InjectTransferReachesCallbackAndTrace) {
  auto spec = analyticSpec();
  spec.leafMarker = true;
  auto b = buildFanout(spec);
  SimEngine engine(analyticConfig());
  bool delivered = false;
  engine.setMarkerHook([&](const std::string&, std::int64_t, SimTime) {
    engine.injectTransfer(1, 0, 5000, [&] { delivered = true; });
  });
  auto result = engine.run(program(b, spreadDeployment(b)));
  EXPECT_TRUE(delivered);
  ASSERT_TRUE(result.trace);
  bool found = false;
  for (const auto& t : result.trace->transfers())
    if (t.bytes == 5000) found = true;
  EXPECT_TRUE(found);
}

} // namespace
} // namespace dps::core
