// Dynamic node allocation: removal plans, column migration, allocation
// accounting and correctness of the factorization across removals
// (paper §6/§8).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "lu/app.hpp"
#include "malleable/controller.hpp"
#include "net/profile.hpp"
#include "trace/efficiency.hpp"

namespace dps::mall {
namespace {

lu::LuConfig baseConfig() {
  lu::LuConfig cfg;
  cfg.n = 64;
  cfg.r = 8; // 8 levels, like the paper's r=324 on 2592
  cfg.workers = 4;
  cfg.seed = 55;
  return cfg;
}

core::SimConfig directConfig() {
  core::SimConfig c;
  c.profile = net::commodityGigabit();
  c.mode = core::ExecutionMode::DirectExec;
  return c;
}

core::SimConfig pdexecConfig() {
  core::SimConfig c;
  c.profile = net::ultraSparc440();
  c.mode = core::ExecutionMode::Pdexec;
  c.allocatePayloads = false;
  return c;
}

TEST(PlanTest, Describe) {
  auto plan = AllocationPlan::killAfter({{1, {4, 5, 6, 7}}});
  EXPECT_EQ(plan.describe(), "kill 4 after it. 1");
  auto plan2 = AllocationPlan::killAfter({{2, {6, 7}}, {3, {4, 5}}});
  EXPECT_EQ(plan2.describe(), "kill 2 after it. 2 + kill 2 after it. 3");
  EXPECT_EQ(AllocationPlan{}.describe(), "static");
  auto plan3 = AllocationPlan::killAfter({{2, {2, 3}}}).thenGrow(5, {2, 3});
  EXPECT_EQ(plan3.describe(), "kill 2 after it. 2 + grow 2 after it. 5");
  EXPECT_FALSE(plan3.empty());
}

TEST(MalleableTest, RemovalKeepsFactorizationCorrect) {
  const auto cfg = baseConfig();
  core::SimEngine engine(directConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440().scaled(100.0), true);
  LuMalleabilityController controller(engine, build,
                                      AllocationPlan::killAfter({{2, {3}}, {4, {2}}}));
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(cfg, result);
  EXPECT_LT(lu::verifyLu(cfg, result, build.workersGroup), 1e-9);
  EXPECT_EQ(controller.removed().size(), 2u);
  EXPECT_GT(controller.migratedBytes(), 0u);
}

TEST(MalleableTest, StagedRemovalMatchesPaperStrategy) {
  // "kill 2 after it. 2 + 2 after it. 3" on 8 threads (paper Fig. 12).
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8;
  core::SimEngine engine(directConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440().scaled(100.0), true);
  LuMalleabilityController controller(engine, build,
                                      AllocationPlan::killAfter({{2, {6, 7}}, {3, {4, 5}}}));
  auto result = lu::runLu(engine, build);
  EXPECT_LT(lu::verifyLu(cfg, result, build.workersGroup), 1e-9);
  EXPECT_EQ(controller.removed().size(), 4u);
}

TEST(MalleableTest, AllocationTimelineShrinks) {
  const auto cfg = baseConfig();
  core::SimEngine engine(pdexecConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
  LuMalleabilityController controller(engine, build, AllocationPlan::killAfter({{1, {2, 3}}}));
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(cfg, result);
  ASSERT_TRUE(result.trace);
  const auto& allocs = result.trace->allocations();
  ASSERT_GE(allocs.size(), 2u);
  EXPECT_EQ(allocs.front().allocatedNodes, 4);
  EXPECT_EQ(allocs.back().allocatedNodes, 2);
}

TEST(MalleableTest, RemovalShortensOrKeepsRuntimeReasonable) {
  // Removing nodes after most of the work is done should cost little
  // (paper: "removing nodes during execution should not have a large
  // impact on the total computation time").
  const auto cfg = baseConfig();
  const auto model = lu::KernelCostModel::ultraSparc440();

  auto makespan = [&](AllocationPlan plan) {
    core::SimEngine engine(pdexecConfig());
    lu::LuBuild build = lu::buildLu(cfg, model, false);
    LuMalleabilityController controller(engine, build, std::move(plan));
    return toSeconds(lu::runLu(engine, build).makespan);
  };

  const double staticTime = makespan(AllocationPlan{});
  const double lateKill = makespan(AllocationPlan::killAfter({{6, {2, 3}}}));
  EXPECT_LT(lateKill, staticTime * 1.10);
}

TEST(MalleableTest, MultOnlyPolicyKeepsColumnsInPlace) {
  const auto cfg = baseConfig();
  core::SimEngine engine(directConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440().scaled(100.0), true);
  LuMalleabilityController controller(engine, build, AllocationPlan::killAfter({{2, {3}}}),
                                      RemovalPolicy::MultOnly);
  auto result = lu::runLu(engine, build);
  EXPECT_LT(lu::verifyLu(cfg, result, build.workersGroup), 1e-9);
  EXPECT_EQ(controller.migratedBytes(), 0u);
  // Directory unchanged: thread 3 still owns its columns.
  EXPECT_FALSE(build.directory->columnsOf(3).empty());
}

TEST(MalleableTest, PinnedColumnDefersMigration) {
  // Kill the owner of the very next panel column: its column must stay
  // until the following boundary, then move.
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8; // column k owned by thread k
  core::SimEngine engine(directConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440().scaled(100.0), true);
  // After iteration 2 the pinned column is 2... kill thread 2's *next*
  // pinned owner: marker value 2 pins column 2, owned by thread 2.
  LuMalleabilityController controller(engine, build, AllocationPlan::killAfter({{2, {2}}}));
  auto result = lu::runLu(engine, build);
  EXPECT_LT(lu::verifyLu(cfg, result, build.workersGroup), 1e-9);
  // Eventually the column moved away.
  EXPECT_TRUE(build.directory->columnsOf(2).empty());
  EXPECT_GT(controller.migratedBytes(), 0u);
}

TEST(GrowTest, ShrinkThenGrowRoundTripsWorkerCount) {
  // "Kill 4 after it. 1, grow 4 after it. 4": the allocation timeline must
  // dip to 4 nodes and return to 8, with migration traffic in both
  // directions.
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8;
  core::SimEngine engine(pdexecConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
  LuMalleabilityController controller(
      engine, build, AllocationPlan::killAfter({{1, {4, 5, 6, 7}}}).thenGrow(4, {4, 5, 6, 7}));
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(cfg, result);
  EXPECT_TRUE(controller.removed().empty()); // every removal was reverted
  EXPECT_GT(controller.shrinkMigratedBytes(), 0u);
  EXPECT_GT(controller.growMigratedBytes(), 0u);
  ASSERT_TRUE(result.trace);
  const auto& allocs = result.trace->allocations();
  std::int32_t minAlloc = 8;
  for (const auto& a : allocs) minAlloc = std::min(minAlloc, a.allocatedNodes);
  EXPECT_EQ(allocs.front().allocatedNodes, 8);
  EXPECT_EQ(minAlloc, 4);
  EXPECT_EQ(allocs.back().allocatedNodes, 8);
}

TEST(GrowTest, GrowKeepsFactorizationCorrect) {
  // Direct execution: the factored matrix must still verify after columns
  // migrate away and back.
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8;
  core::SimEngine engine(directConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440().scaled(100.0), true);
  LuMalleabilityController controller(
      engine, build, AllocationPlan::killAfter({{2, {6, 7}}}).thenGrow(5, {6, 7}));
  auto result = lu::runLu(engine, build);
  EXPECT_LT(lu::verifyLu(cfg, result, build.workersGroup), 1e-9);
  EXPECT_TRUE(controller.removed().empty());
  EXPECT_GT(controller.growMigratedBytes(), 0u);
}

TEST(GrowTest, RegrownWorkerReceivesFutureColumns) {
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 4;
  core::SimEngine engine(pdexecConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
  LuMalleabilityController controller(
      engine, build, AllocationPlan::killAfter({{1, {3}}}).thenGrow(3, {3}));
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(cfg, result);
  // After the grow-side rebalance thread 3 owns unfactored columns again.
  EXPECT_FALSE(build.directory->columnsOf(3).empty());
}

TEST(GrowTest, GrowingANeverRemovedThreadThrows) {
  const auto cfg = baseConfig();
  core::SimEngine engine(pdexecConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
  AllocationPlan plan;
  plan.thenGrow(1, {2});
  LuMalleabilityController controller(engine, build, std::move(plan));
  EXPECT_THROW(lu::runLu(engine, build), Error);
}

TEST(EfficiencyPolicyTest, ShrinksAllocationWhenEfficiencyDrops) {
  // The paper's future-work direction (§9): allocation driven by the
  // observed dynamic efficiency instead of a fixed plan.
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8;
  core::SimEngine engine(pdexecConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
  EfficiencyPolicy policy;
  policy.threshold = 0.45;
  policy.minWorkers = 2;
  LuMalleabilityController controller(engine, build, policy);
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(cfg, result);
  // The LU efficiency decays below 45% well before the end: the policy
  // must have released workers.
  EXPECT_FALSE(controller.removed().empty());
  EXPECT_FALSE(controller.observedEfficiencies().empty());
  const auto& allocs = result.trace->allocations();
  EXPECT_LT(allocs.back().allocatedNodes, allocs.front().allocatedNodes);
}

TEST(EfficiencyPolicyTest, RespectsMinimumWorkers) {
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 4;
  core::SimEngine engine(pdexecConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
  EfficiencyPolicy policy;
  policy.threshold = 0.99; // always below threshold -> shrink every time
  policy.minWorkers = 3;
  LuMalleabilityController controller(engine, build, policy);
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(cfg, result);
  EXPECT_LE(controller.removed().size(), 1u); // 4 -> 3 and no further
}

TEST(EfficiencyPolicyTest, HighThresholdStaysCorrectUnderDirectExecution) {
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8;
  core::SimEngine engine(directConfig());
  lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440().scaled(100.0), true);
  EfficiencyPolicy policy;
  policy.threshold = 0.5;
  policy.minWorkers = 2;
  LuMalleabilityController controller(engine, build, policy);
  auto result = lu::runLu(engine, build);
  EXPECT_LT(lu::verifyLu(cfg, result, build.workersGroup), 1e-9);
}

TEST(MalleableTest, EfficiencyImprovesAfterRemoval) {
  // Paper Fig. 11: deallocating idle capacity raises per-iteration
  // efficiency for subsequent iterations.
  lu::LuConfig cfg = baseConfig();
  cfg.workers = 8;
  const auto model = lu::KernelCostModel::ultraSparc440();

  auto lastIterationEfficiency = [&](AllocationPlan plan) {
    core::SimEngine engine(pdexecConfig());
    lu::LuBuild build = lu::buildLu(cfg, model, false);
    LuMalleabilityController controller(engine, build, std::move(plan));
    auto result = lu::runLu(engine, build);
    const auto points = trace::dynamicEfficiency(*result.trace, "iteration", simEpoch(),
                                                 simEpoch() + result.makespan);
    // Average the second half of the run.
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = points.size() / 2; i < points.size(); ++i, ++n)
      sum += points[i].efficiency;
    return sum / static_cast<double>(n);
  };

  const double staticEff = lastIterationEfficiency(AllocationPlan{});
  const double killedEff = lastIterationEfficiency(AllocationPlan::killAfter({{1, {4, 5, 6, 7}}}));
  EXPECT_GT(killedEff, staticEff);
}

} // namespace
} // namespace dps::mall
