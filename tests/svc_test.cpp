// svc:: profile service: cache key fingerprints, single-flight memoization,
// the acquisition API's bit-identity and determinism contracts, replay
// sharing profile-build cache entries, and bounded-queue admission.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "sched/cluster.hpp"
#include "sched/engine_run.hpp"
#include "sched/replay.hpp"
#include "svc/profile_cache.hpp"
#include "svc/request_queue.hpp"

namespace dps::svc {
namespace {

/// Tiny mix for fast unit tests (8-level LU + 6-sweep Jacobi).
std::vector<sched::JobClass> tinyMix() {
  sched::JobClass lu;
  lu.name = "lu-tiny";
  lu.app = sched::AppKind::Lu;
  lu.lu.n = 64;
  lu.lu.r = 8;
  lu.lu.workers = 4;
  lu.lu.seed = 3;
  sched::JobClass ja;
  ja.name = "jacobi-tiny";
  ja.app = sched::AppKind::Jacobi;
  ja.jacobi.rows = 64;
  ja.jacobi.cols = 64;
  ja.jacobi.sweeps = 6;
  ja.jacobi.workers = 4;
  return {lu, ja};
}

sched::EngineRunSpec tinySpec() {
  return sched::profileRunSpec(tinyMix()[0], 4, sched::ProfileSettings{});
}

void expectRecordsEqual(const sched::EngineRunRecord& a, const sched::EngineRunRecord& b) {
  EXPECT_EQ(a.totalSec, b.totalSec);
  EXPECT_EQ(a.phaseSec, b.phaseSec);
  EXPECT_EQ(a.phaseEff, b.phaseEff);
  EXPECT_EQ(a.phaseMarker, b.phaseMarker);
  EXPECT_EQ(a.migratedBytes, b.migratedBytes);
  ASSERT_EQ(a.allocEvents.size(), b.allocEvents.size());
  for (std::size_t i = 0; i < a.allocEvents.size(); ++i) {
    EXPECT_EQ(a.allocEvents[i].timeSec, b.allocEvents[i].timeSec);
    EXPECT_EQ(a.allocEvents[i].nodes, b.allocEvents[i].nodes);
  }
}

TEST(ProfileCacheTest, HitIsBitIdenticalToDirectExecution) {
  const auto spec = tinySpec();
  const auto direct = sched::executeEngineRun(spec);

  ProfileCache cache;
  const auto miss = cache.run(spec);
  const auto hit = cache.run(spec);
  expectRecordsEqual(direct, miss);
  expectRecordsEqual(direct, hit);

  const auto cs = cache.stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.engineRuns, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProfileCacheTest, EverySettingsFieldChangesTheFingerprint) {
  const sched::ProfileSettings base;
  const std::uint64_t fp = base.fingerprint();
  EXPECT_EQ(fp, sched::ProfileSettings{}.fingerprint()); // stable

  auto mutate = [&](auto&& change) {
    sched::ProfileSettings s;
    change(s);
    return s.fingerprint();
  };
  EXPECT_NE(fp, mutate([](auto& s) { s.platform.latency = s.platform.latency * 2; }));
  EXPECT_NE(fp, mutate([](auto& s) { s.platform.bandwidthBytesPerSec *= 2; }));
  EXPECT_NE(fp, mutate([](auto& s) { s.platform.computeScale *= 1.5; }));
  EXPECT_NE(fp, mutate([](auto& s) { s.luModel.gemmFlopsPerSec *= 2; }));
  EXPECT_NE(fp, mutate([](auto& s) { s.luModel.perKernelOverhead += seconds(1e-6); }));
  EXPECT_NE(fp, mutate([](auto& s) { s.jacobiModel.cellsPerSec *= 2; }));

  // The settings-level fingerprint is exactly the spec-level engine
  // fingerprint, so profile builds and replays share cache entries.
  EXPECT_EQ(fp, tinySpec().engineFingerprint());
}

TEST(ProfileCacheTest, SpecHalfOfTheKeySeparatesRuns) {
  const auto a = tinySpec();
  auto b = a;
  b.lu.seed = 4;
  EXPECT_EQ(a.engineFingerprint(), b.engineFingerprint());
  EXPECT_NE(a.cacheSpec(), b.cacheSpec());

  ProfileCache cache;
  cache.run(a);
  cache.run(b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().engineRuns, 2u);
}

TEST(ProfileCacheTest, SingleFlightUnderContention) {
  const auto spec = tinySpec();
  ProfileCache cache;
  constexpr int kThreads = 8;
  std::vector<sched::EngineRunRecord> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = cache.run(spec); });
  for (auto& th : threads) th.join();

  const auto cs = cache.stats();
  EXPECT_EQ(cs.engineRuns, 1u) << "identical concurrent requests must simulate once";
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits + cs.joined, static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t)
    expectRecordsEqual(results[0], results[static_cast<std::size_t>(t)]);
}

TEST(ProfileCacheTest, RegistryCountersMirrorCacheStatsExactly) {
  // The obs handles are bumped at the same statements as the CacheStats
  // fields, including under single-flight contention — the registry view
  // and stats() can never disagree.
  const auto spec = tinySpec();
  obs::Registry registry;
  ProfileCache cache;
  cache.attachRegistry(&registry);

  cache.run(spec); // miss + engine run
  cache.run(spec); // hit
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const auto spec2 = sched::profileRunSpec(tinyMix()[1], 4, sched::ProfileSettings{});
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] { cache.run(spec2); });
  for (auto& th : threads) th.join();

  const auto cs = cache.stats();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("svc.cache.hits"), cs.hits);
  EXPECT_EQ(snap.counter("svc.cache.joined"), cs.joined);
  EXPECT_EQ(snap.counter("svc.cache.misses"), cs.misses);
  EXPECT_EQ(snap.counter("svc.cache.engine_runs"), cs.engineRuns);
  EXPECT_EQ(cs.lookups(), static_cast<std::uint64_t>(2 + kThreads));
  const auto* runSec = snap.histogram("svc.cache.run_sec");
  ASSERT_NE(runSec, nullptr);
  EXPECT_EQ(runSec->count, cs.engineRuns);
  // Runs executed through the cache record engine.* into the same registry.
  EXPECT_EQ(snap.counter("engine.runs"), cs.engineRuns);

  // Detaching stops recording without touching the cache's own stats.
  cache.attachRegistry(nullptr);
  cache.run(spec);
  EXPECT_EQ(registry.snapshot().counter("svc.cache.hits"), cs.hits);
  EXPECT_EQ(cache.stats().hits, cs.hits + 1);
}

TEST(RequestQueueTest, RegistryCountersMirrorQueueAccounting) {
  obs::Registry registry;
  ProfileCache cache;
  RequestQueue::Options opts;
  opts.capacity = 2;
  opts.workers = 0;
  opts.metrics = &registry;
  RequestQueue queue(cache, opts);

  const auto spec = tinySpec();
  EXPECT_TRUE(queue.submit(spec).accepted());
  EXPECT_TRUE(queue.submit(spec).accepted());
  EXPECT_FALSE(queue.submit(spec).accepted());
  EXPECT_TRUE(queue.drainOne());
  EXPECT_TRUE(queue.drainOne());

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("svc.queue.accepted"), 2u);
  EXPECT_EQ(snap.counter("svc.queue.rejected"), queue.rejectedCount());
  EXPECT_EQ(snap.counter("svc.queue.served"), queue.served());
  EXPECT_DOUBLE_EQ(snap.gauge("svc.queue.depth_high_water"), 2.0);
  const auto* lat = snap.histogram("svc.queue.latency_sec");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, queue.served());
  EXPECT_GT(lat->sum, 0.0);
}

TEST(AcquireProfileTest, MatchesDirectBuildAtAnyJobCount) {
  const auto classes = tinyMix();
  const sched::ProfileSettings settings;
  const auto direct = sched::JobProfileTable::build(classes, 4, settings, 1);

  ProfileCache cacheA, cacheB;
  const auto serial = buildProfileTable(classes, 4, settings, 1, cacheA);
  const auto fanned = buildProfileTable(classes, 4, settings, 4, cacheB);

  ASSERT_EQ(direct.classCount(), serial.classCount());
  ASSERT_EQ(direct.classCount(), fanned.classCount());
  for (std::size_t c = 0; c < direct.classCount(); ++c) {
    const auto& d = direct.of(c);
    const auto& s = serial.of(c);
    const auto& f = fanned.of(c);
    EXPECT_EQ(d.allocs, s.allocs);
    EXPECT_EQ(d.allocs, f.allocs);
    ASSERT_EQ(d.byAlloc.size(), s.byAlloc.size());
    ASSERT_EQ(d.byAlloc.size(), f.byAlloc.size());
    for (std::size_t i = 0; i < d.byAlloc.size(); ++i) {
      EXPECT_EQ(d.byAlloc[i].totalSec, s.byAlloc[i].totalSec);
      EXPECT_EQ(d.byAlloc[i].totalSec, f.byAlloc[i].totalSec);
      EXPECT_EQ(d.byAlloc[i].phaseSec, s.byAlloc[i].phaseSec);
      EXPECT_EQ(d.byAlloc[i].phaseSec, f.byAlloc[i].phaseSec);
      EXPECT_EQ(d.byAlloc[i].phaseEff, f.byAlloc[i].phaseEff);
    }
  }
}

TEST(AcquireProfileTest, RepeatAcquisitionIsAllHits) {
  const auto classes = tinyMix();
  const sched::ProfileSettings settings;
  ProfileCache cache;
  const std::vector<std::int32_t> allocs{1, 2, 4};
  const auto first = acquireProfile(settings, classes[0], allocs, 1, cache);
  const auto runsAfterFirst = cache.stats().engineRuns;
  EXPECT_EQ(runsAfterFirst, allocs.size());

  const auto second = acquireProfile(settings, classes[0], allocs, 1, cache);
  EXPECT_EQ(cache.stats().engineRuns, runsAfterFirst) << "repeat acquisition must not simulate";
  ASSERT_EQ(first.byAlloc.size(), second.byAlloc.size());
  for (std::size_t i = 0; i < first.byAlloc.size(); ++i)
    EXPECT_EQ(first.byAlloc[i].totalSec, second.byAlloc[i].totalSec);
}

TEST(AcquireProfileTest, InterpolatedBuildRunsOnlyAnchorSimulations) {
  // A 12-level dense class through the cache: the default (interpolating)
  // build must execute exactly autoAnchorCount(12) = 3 engine runs yet
  // produce all 12 profile entries; --exact-profiles runs all 12.
  sched::JobClass dense = tinyMix()[0];
  dense.lu.workers = 12;
  dense.denseAllocs = true;
  const sched::ProfileSettings settings;

  ProfileCache interpCache;
  const auto interp = buildProfileTable({dense}, 12, settings, 1, interpCache);
  EXPECT_EQ(interpCache.stats().engineRuns, 3u);
  EXPECT_EQ(interp.buildInfo().engineRunPoints, 3u);
  EXPECT_EQ(interp.buildInfo().profiledAllocs, 12u);
  EXPECT_DOUBLE_EQ(interp.buildInfo().runReduction(), 4.0);
  ASSERT_EQ(interp.of(0).allocs.size(), 12u);

  ProfileCache exactCache;
  sched::ProfileBuildOptions exact;
  exact.interpolate = false;
  const auto full = buildProfileTable({dense}, 12, settings, 1, exactCache, exact);
  EXPECT_EQ(exactCache.stats().engineRuns, 12u);
  EXPECT_DOUBLE_EQ(full.buildInfo().runReduction(), 1.0);

  // The interpolating build's anchor entries are the exhaustive build's
  // engine profiles bit-for-bit (same cache keys, same records).
  for (std::int32_t a : sched::InterpolatedProfile::pickAnchors(
           full.of(0).allocs, sched::InterpolatedProfile::autoAnchorCount(12))) {
    EXPECT_EQ(interp.of(0).at(a).totalSec, full.of(0).at(a).totalSec) << a;
    EXPECT_EQ(interp.of(0).at(a).phaseSec, full.of(0).at(a).phaseSec) << a;
  }
}

// The acceptance property of the PR: with one cache behind both the profile
// build and the replay pass, `dps_cluster --replay` issues strictly fewer
// engine runs than lookups — static replays are pure cache hits.
TEST(ReplayThroughCacheTest, StaticReplaysShareProfileBuildEntries) {
  const auto classes = tinyMix();
  const sched::ProfileSettings settings;
  ProfileCache cache;
  const auto profiles = buildProfileTable(classes, 4, settings, 1, cache);
  const auto runsAfterProfile = cache.stats().engineRuns;
  ASSERT_GT(runsAfterProfile, 0u);

  sched::WorkloadConfig wcfg;
  wcfg.seed = 7;
  wcfg.jobCount = 6;
  wcfg.arrivalRatePerSec = 1.0;
  wcfg.classes = classes;
  const auto workload = sched::Workload::generate(wcfg, 4);
  // Rigid FCFS never reallocates, so every history replays as a static run
  // — the exact specs the profile build already simulated.
  const auto policy = sched::makePolicy("fcfs-rigid");
  const auto metrics = sched::simulateCluster(
      sched::ClusterConfig::fromProfile(settings.platform, 4), workload, profiles, *policy);

  sched::ReplaySettings rs;
  rs.engine = settings;
  rs.runner = cachedRunner(cache);
  const auto report = sched::replaySchedule(metrics, workload, profiles, rs);
  EXPECT_GT(report.replayed, 0);
  EXPECT_EQ(cache.stats().engineRuns, runsAfterProfile)
      << "static replays must be served from the profile build's cache entries";
  EXPECT_GT(cache.stats().lookups(), cache.stats().engineRuns);
}

TEST(RequestQueueTest, BoundedAdmissionRejectsWithRetryHint) {
  ProfileCache cache;
  RequestQueue::Options opts;
  opts.capacity = 2;
  opts.workers = 0; // manual drain: nothing serves until we say so
  RequestQueue queue(cache, opts);

  const auto spec = tinySpec();
  int completions = 0;
  auto onDone = [&](const sched::EngineRunRecord&) { ++completions; };
  EXPECT_TRUE(queue.submit(spec, onDone).accepted());
  EXPECT_TRUE(queue.submit(spec, onDone).accepted());

  const auto rejected = queue.submit(spec, onDone);
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.depth, 2u);
  EXPECT_GT(rejected.retryAfterSec, 0.0) << "rejections must carry a backoff hint";
  EXPECT_EQ(queue.rejectedCount(), 1u);

  EXPECT_TRUE(queue.drainOne());
  EXPECT_TRUE(queue.submit(spec, onDone).accepted()) << "drained slot frees capacity";
  EXPECT_TRUE(queue.drainOne());
  EXPECT_TRUE(queue.drainOne());
  EXPECT_FALSE(queue.drainOne()) << "queue must report empty";
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(queue.served(), 3u);
  EXPECT_GT(queue.ewmaServiceSec(), 0.0);
  EXPECT_EQ(cache.stats().engineRuns, 1u) << "identical queued requests memoize";
}

TEST(RequestQueueTest, WorkerThreadsDrainConcurrentSubmissions) {
  ProfileCache cache;
  RequestQueue::Options opts;
  opts.capacity = 64;
  opts.workers = 2;
  RequestQueue queue(cache, opts);

  const auto classes = tinyMix();
  const sched::ProfileSettings settings;
  std::atomic<int> completions{0};
  int submitted = 0;
  for (int round = 0; round < 4; ++round)
    for (const auto& klass : classes)
      for (std::int32_t alloc : sched::feasibleAllocations(klass, 4)) {
        const auto adm = queue.submit(sched::profileRunSpec(klass, alloc, settings),
                                      [&](const sched::EngineRunRecord&) { ++completions; });
        ASSERT_TRUE(adm.accepted());
        ++submitted;
      }
  queue.drain();
  EXPECT_EQ(completions.load(), submitted);
  EXPECT_EQ(queue.served(), static_cast<std::uint64_t>(submitted));
  // 4 identical rounds: only the first can simulate.
  EXPECT_EQ(cache.stats().engineRuns, static_cast<std::uint64_t>(submitted) / 4);
}

} // namespace
} // namespace dps::svc
