// Parameterized correctness sweep: every graph variant x block size x
// worker count factors the matrix correctly under direct execution, and
// behaves deterministically under PDEXEC.  This is the property-test net
// that catches scope/lineage bugs in the flow-graph wiring.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.hpp"
#include "lu/app.hpp"
#include "lu/builder.hpp"
#include "net/profile.hpp"

namespace dps::lu {
namespace {

struct VariantParam {
  bool pipelined;
  bool flowControl;
  bool parallelMult;
  std::int32_t r;
  std::int32_t workers;
};

std::string paramName(const ::testing::TestParamInfo<VariantParam>& info) {
  const auto& p = info.param;
  std::string s;
  s += p.pipelined ? "P" : "B";
  s += p.flowControl ? "F" : "x";
  s += p.parallelMult ? "M" : "x";
  s += "_r" + std::to_string(p.r) + "_w" + std::to_string(p.workers);
  return s;
}

class LuVariantSweep : public ::testing::TestWithParam<VariantParam> {};

TEST_P(LuVariantSweep, DirectExecutionFactorsCorrectly) {
  const auto& p = GetParam();
  LuConfig cfg;
  cfg.n = 48;
  cfg.r = p.r;
  cfg.workers = p.workers;
  cfg.pipelined = p.pipelined;
  cfg.flowControl = p.flowControl;
  cfg.fcLimit = 2;
  cfg.parallelMult = p.parallelMult;
  cfg.subBlock = p.r / 2;
  cfg.seed = 1000 + p.r + p.workers;

  core::SimConfig sc;
  sc.profile = net::commodityGigabit();
  sc.mode = core::ExecutionMode::DirectExec;
  core::SimEngine engine(sc);
  LuBuild build = buildLu(cfg, KernelCostModel::ultraSparc440().scaled(100.0), true);
  auto result = runLu(engine, build);
  checkOutputs(cfg, result);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-9);
}

TEST_P(LuVariantSweep, PdexecIsDeterministic) {
  const auto& p = GetParam();
  LuConfig cfg;
  cfg.n = 48;
  cfg.r = p.r;
  cfg.workers = p.workers;
  cfg.pipelined = p.pipelined;
  cfg.flowControl = p.flowControl;
  cfg.fcLimit = 2;
  cfg.parallelMult = p.parallelMult;
  cfg.subBlock = p.r / 2;

  SimDuration first{};
  for (int i = 0; i < 2; ++i) {
    core::SimConfig sc;
    sc.profile = net::ultraSparc440();
    sc.mode = core::ExecutionMode::Pdexec;
    sc.allocatePayloads = false;
    core::SimEngine engine(sc);
    LuBuild build = buildLu(cfg, KernelCostModel::ultraSparc440(), false);
    auto r = runLu(engine, build);
    checkOutputs(cfg, r);
    if (i == 0) first = r.makespan;
    else EXPECT_EQ(r.makespan, first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, LuVariantSweep,
    ::testing::Values(
        // Basic / P / FC / PM combinations the paper evaluates (§6).
        VariantParam{false, false, false, 12, 2}, VariantParam{true, false, false, 12, 2},
        VariantParam{true, true, false, 12, 2}, VariantParam{false, false, true, 12, 2},
        VariantParam{true, false, true, 12, 2}, VariantParam{true, true, true, 12, 2},
        // Granularity sweep (block size varies the level count, §6).
        VariantParam{false, false, false, 24, 2}, VariantParam{false, false, false, 8, 2},
        VariantParam{true, true, false, 8, 2}, VariantParam{true, false, false, 6, 2},
        // Worker counts, including more workers than columns per level.
        VariantParam{false, false, false, 12, 4}, VariantParam{true, false, false, 12, 4},
        VariantParam{true, true, true, 8, 4}, VariantParam{false, false, false, 12, 1},
        VariantParam{true, false, false, 16, 3}),
    paramName);

} // namespace
} // namespace dps::lu
