// The Jacobi stencil application: neighbourhood exchange with relative
// thread indices (paper §2), verified bit-exactly against a serial
// reference on both engines.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "jacobi/app.hpp"
#include "jacobi/objects.hpp"
#include "net/profile.hpp"
#include "runtime/engine.hpp"

namespace dps::jacobi {
namespace {

core::SimConfig directConfig() {
  core::SimConfig c;
  c.profile = net::commodityGigabit();
  c.mode = core::ExecutionMode::DirectExec;
  return c;
}

core::SimConfig pdexecConfig() {
  core::SimConfig c;
  c.profile = net::ultraSparc440();
  c.mode = core::ExecutionMode::Pdexec;
  c.allocatePayloads = false;
  return c;
}

TEST(JacobiConfigTest, Validation) {
  JacobiConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.workers = 1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = JacobiConfig{};
  cfg.rows = 30; // not divisible by 4 workers
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = JacobiConfig{};
  cfg.sweeps = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(JacobiTest, MatchesSerialReferenceExactly) {
  JacobiConfig cfg;
  cfg.rows = 32;
  cfg.cols = 24;
  cfg.sweeps = 5;
  cfg.workers = 4;
  core::SimEngine engine(directConfig());
  JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, true);
  auto result = runJacobi(engine, build);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(verifyJacobi(cfg, result, build.workers), 0.0); // bit-exact
}

TEST(JacobiTest, ResidualDecreasesMonotonically) {
  // Jacobi relaxation of a smooth problem converges; the reported final
  // residual must shrink with more sweeps.
  auto residualAfter = [&](std::int32_t sweeps) {
    JacobiConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    cfg.sweeps = sweeps;
    cfg.workers = 2;
    core::SimEngine engine(directConfig());
    JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, true);
    auto result = runJacobi(engine, build);
    return dynamic_cast<const JacobiResult&>(*result.outputs.at(0)).residual;
  };
  const double r2 = residualAfter(2);
  const double r8 = residualAfter(8);
  const double r20 = residualAfter(20);
  EXPECT_GT(r2, r8);
  EXPECT_GT(r8, r20);
}

class JacobiSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t, std::int32_t>> {};

TEST_P(JacobiSweep, CorrectAcrossShapes) {
  const auto [workers, sweeps, cols] = GetParam();
  JacobiConfig cfg;
  cfg.rows = workers * 8;
  cfg.cols = cols;
  cfg.sweeps = sweeps;
  cfg.workers = workers;
  cfg.seed = 100 + workers + sweeps;
  core::SimEngine engine(directConfig());
  JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, true);
  auto result = runJacobi(engine, build);
  EXPECT_EQ(verifyJacobi(cfg, result, build.workers), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, JacobiSweep,
                         ::testing::Values(std::tuple{2, 1, 16}, std::tuple{2, 7, 8},
                                           std::tuple{3, 4, 20}, std::tuple{4, 3, 16},
                                           std::tuple{6, 2, 12}, std::tuple{8, 5, 8}));

TEST(JacobiTest, RuntimeEngineMatchesReferenceToo) {
  JacobiConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  cfg.sweeps = 6;
  cfg.workers = 4;
  JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, true);
  rt::RuntimeEngine engine;
  auto result = engine.run(makeProgram(build));
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(verifyJacobi(cfg, result, build.workers), 0.0);
}

TEST(JacobiTest, PdexecIsDeterministicAndMarkersCount) {
  JacobiConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.sweeps = 10;
  cfg.workers = 4;
  SimDuration first{};
  for (int i = 0; i < 2; ++i) {
    core::SimEngine engine(pdexecConfig());
    JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, false);
    auto result = runJacobi(engine, build);
    ASSERT_TRUE(result.trace);
    EXPECT_EQ(result.trace->markersNamed("sweep").size(), 10u);
    if (i == 0) first = result.makespan;
    else EXPECT_EQ(result.makespan, first);
  }
}

TEST(JacobiTest, HaloTrafficMatchesFormula) {
  JacobiConfig cfg;
  cfg.rows = 64;
  cfg.cols = 32;
  cfg.sweeps = 3;
  cfg.workers = 4;
  core::SimEngine engine(pdexecConfig());
  JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, false);
  auto result = runJacobi(engine, build);
  // Per sweep: 2(T-1) orders + 2(T-1) halos + 2(T-1) acks + 1 token
  //          + T compute orders + T strip-dones + 1 token/result.
  const std::int64_t T = cfg.workers;
  const std::int64_t perSweep = 3 * 2 * (T - 1) + 1 + 2 * T + 1;
  EXPECT_EQ(result.counters.messages, static_cast<std::uint64_t>(perSweep * cfg.sweeps));
}

TEST(JacobiTest, MoreWorkersReduceComputeTimePerSweep) {
  auto makespan = [&](std::int32_t workers) {
    JacobiConfig cfg;
    cfg.rows = 1440; // divisible by 2..6
    cfg.cols = 1440;
    cfg.sweeps = 6;
    cfg.workers = workers;
    core::SimEngine engine(pdexecConfig());
    JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, false);
    return toSeconds(runJacobi(engine, build).makespan);
  };
  const double t2 = makespan(2);
  const double t4 = makespan(4);
  EXPECT_LT(t4, t2);
  EXPECT_GT(t4, t2 / 2.5); // not super-linear
}

TEST(JacobiTest, NoallocKeepsWireSizes) {
  JacobiConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.sweeps = 2;
  cfg.workers = 2;
  auto run = [&](bool allocate) {
    core::SimConfig sc = pdexecConfig();
    sc.allocatePayloads = allocate;
    core::SimEngine engine(sc);
    JacobiBuild build = buildJacobi(cfg, JacobiCostModel{}, allocate);
    return runJacobi(engine, build);
  };
  auto withAlloc = run(true);
  auto noAlloc = run(false);
  EXPECT_EQ(withAlloc.counters.networkBytes, noAlloc.counters.networkBytes);
  EXPECT_EQ(withAlloc.makespan, noAlloc.makespan);
}

} // namespace
} // namespace dps::jacobi
