#include <gtest/gtest.h>

#include <sstream>

#include "trace/efficiency.hpp"
#include "trace/gantt.hpp"
#include "trace/trace.hpp"

namespace dps::trace {
namespace {

StepRecord step(flow::NodeId node, SimTime start, SimDuration dur, SimDuration work = {}) {
  StepRecord r;
  r.node = node;
  r.thread = {0, node};
  r.op = 0;
  r.start = start;
  r.end = start + dur;
  r.work = work == SimDuration::zero() ? dur : work;
  return r;
}

SimTime at(std::int64_t ms) { return simEpoch() + milliseconds(ms); }

TEST(TraceTest, TotalsAccumulate) {
  Trace t;
  t.add(step(0, at(0), milliseconds(10)));
  t.add(step(1, at(5), milliseconds(20)));
  t.add(TransferRecord{0, 1, 1000, at(0), at(1)});
  t.add(TransferRecord{1, 0, 500, at(2), at(3)});
  EXPECT_EQ(t.totalWork(), milliseconds(30));
  EXPECT_EQ(t.totalBytes(), 1500u);
}

TEST(TraceTest, BusyFractionMergesOverlaps) {
  Trace t;
  t.add(step(0, at(0), milliseconds(10)));
  t.add(step(0, at(5), milliseconds(10))); // overlaps the first
  // Busy [0,15) out of [0,20) = 0.75.
  EXPECT_NEAR(t.nodeBusyFraction(0, at(0), at(20)), 0.75, 1e-12);
  EXPECT_NEAR(t.nodeBusyFraction(1, at(0), at(20)), 0.0, 1e-12);
}

TEST(TraceTest, WorkInWindowIsProportional) {
  Trace t;
  t.add(step(0, at(0), milliseconds(10), milliseconds(6)));
  // Half the step overlaps [5, 15): contributes half the work.
  EXPECT_EQ(t.workIn(at(5), at(15)), milliseconds(3));
  // Fully inside a bigger window: whole work.
  EXPECT_EQ(t.workIn(at(0), at(20)), milliseconds(6));
}

TEST(TraceTest, NodeSecondsIntegratesAllocations) {
  Trace t;
  t.add(AllocationRecord{at(0), 8});
  t.add(AllocationRecord{at(10), 4});
  // [0,10): 8 nodes, [10,20): 4 nodes -> 0.08 + 0.04 node-seconds.
  EXPECT_NEAR(t.nodeSecondsIn(at(0), at(20)), 0.12, 1e-12);
  EXPECT_NEAR(t.nodeSecondsIn(at(5), at(15)), 0.06, 1e-12);
}

TEST(TraceTest, MarkersSortedByName) {
  Trace t;
  t.add(MarkerRecord{"iteration", 2, at(20)});
  t.add(MarkerRecord{"iteration", 1, at(10)});
  t.add(MarkerRecord{"other", 9, at(5)});
  const auto ms = t.markersNamed("iteration");
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0].value, 1);
  EXPECT_EQ(ms[1].value, 2);
}

TEST(EfficiencyTest, PerfectUtilizationIsOne) {
  Trace t;
  t.add(AllocationRecord{at(0), 2});
  t.add(step(0, at(0), milliseconds(10)));
  t.add(step(1, at(0), milliseconds(10)));
  EXPECT_NEAR(overallEfficiency(t, at(0), at(10)), 1.0, 1e-9);
}

TEST(EfficiencyTest, IdleNodeHalvesEfficiency) {
  Trace t;
  t.add(AllocationRecord{at(0), 2});
  t.add(step(0, at(0), milliseconds(10)));
  EXPECT_NEAR(overallEfficiency(t, at(0), at(10)), 0.5, 1e-9);
}

TEST(EfficiencyTest, DeallocationRaisesEfficiency) {
  Trace t;
  // 2 nodes allocated, only node 0 working; node 1 freed at t=10.
  t.add(AllocationRecord{at(0), 2});
  t.add(AllocationRecord{at(10), 1});
  t.add(step(0, at(0), milliseconds(20)));
  t.add(MarkerRecord{"iteration", 1, at(10)});
  const auto pts = dynamicEfficiency(t, "iteration", at(0), at(20));
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(pts[0].efficiency, 0.5, 1e-9);
  EXPECT_NEAR(pts[1].efficiency, 1.0, 1e-9);
}

TEST(EfficiencyTest, SegmentsFollowMarkers) {
  Trace t;
  t.add(AllocationRecord{at(0), 1});
  t.add(step(0, at(0), milliseconds(30)));
  t.add(MarkerRecord{"iteration", 1, at(10)});
  t.add(MarkerRecord{"iteration", 2, at(20)});
  const auto pts = dynamicEfficiency(t, "iteration", at(0), at(30));
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].start, at(0));
  EXPECT_EQ(pts[0].end, at(10));
  EXPECT_EQ(pts[1].markerValue, 2);
  EXPECT_EQ(pts[2].end, at(30));
}

TEST(GanttTest, RendersLanesWithActivity) {
  Trace t;
  t.add(step(0, at(0), milliseconds(5)));
  t.add(step(1, at(5), milliseconds(5)));
  const std::string out = renderGantt(t, at(0), at(10), 40, 2);
  EXPECT_NE(out.find("node  0"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  // Two lanes.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(GanttTest, CsvContainsAllRecordKinds) {
  Trace t;
  t.add(step(0, at(0), milliseconds(5)));
  t.add(TransferRecord{0, 1, 123, at(1), at(2)});
  t.add(MarkerRecord{"iteration", 1, at(3)});
  std::ostringstream os;
  writeCsv(t, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("step,"), std::string::npos);
  EXPECT_NE(csv.find("transfer,"), std::string::npos);
  EXPECT_NE(csv.find("marker,iteration"), std::string::npos);
}

} // namespace
} // namespace dps::trace
