// sched::explore — the exhaustive schedule-space oracle and invariant
// verifier: known-optimal workloads, dedup/prune soundness, policy audits,
// and the mutant counterexample loop.
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/recorder.hpp"
#include "sched/cluster.hpp"
#include "sched/explore.hpp"
#include "svc/profile_cache.hpp"

namespace dps::sched {
namespace {

/// A hand-built two-phase class with perfect speedup: 10 s on one node,
/// 5 s on two, split into equal phases so the explorer has realloc
/// boundaries to branch on.  No migration state, so the oracle's
/// arithmetic is exactly the arithmetic of the hand computation below.
JobProfileTable unitProfiles() {
  ClassProfile cp;
  cp.name = "unit";
  cp.app = AppKind::Lu;
  cp.allocs = {1, 2};
  PhaseProfile one;
  one.nodes = 1;
  one.phaseSec = {5.0, 5.0};
  one.phaseEff = {1.0, 1.0};
  one.totalSec = 10.0;
  PhaseProfile two;
  two.nodes = 2;
  two.phaseSec = {2.5, 2.5};
  two.phaseEff = {1.0, 1.0};
  two.totalSec = 5.0;
  cp.byAlloc = {one, two};
  cp.stateBytes = 0;
  return JobProfileTable::fromProfiles({cp});
}

/// `count` unit jobs, all arriving at t = 0, on a two-node machine.
Workload unitWorkload(std::int32_t count) {
  Workload wl;
  wl.cfg.jobCount = count;
  for (std::int32_t i = 0; i < count; ++i) wl.jobs.push_back(Job{i, 0, 0.0});
  return wl;
}

ClusterConfig unitConfig() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  return cfg;
}

/// The explorer-scale engine-profiled setup the tools use, shrunk to a
/// four-node machine so unpruned searches stay fast in unit tests.
struct EngineSetup {
  JobProfileTable profiles;
  ClusterConfig cfg;

  explicit EngineSetup(std::int32_t nodes = 4)
      : profiles(svc::buildProfileTable(exploreMix(nodes), nodes, ProfileSettings{})),
        cfg(ClusterConfig::fromProfile(ProfileSettings{}.platform, nodes)) {}

  Workload workload(std::uint64_t seed, std::int32_t jobs = 3) const {
    WorkloadConfig wcfg;
    wcfg.seed = seed;
    wcfg.jobCount = jobs;
    wcfg.arrivalRatePerSec = 20.0; // dense: everything queues, policies contend
    wcfg.classes = exploreMix(cfg.nodes);
    return Workload::generate(wcfg, cfg.nodes);
  }
};

// Three identical perfect-speedup jobs on two nodes have a hand-computable
// optimum.  Makespan: 30 node-seconds of work on 2 nodes is >= 15 s
// (utilization <= 1), running each job wide back-to-back achieves it, and
// any reallocation only adds migration latency.  Mean slowdown: by the
// same work bound at most one job can be done by t=5 and at most two by
// t=10, so the sorted finish times are >= (5, 10, 15) and mean slowdown
// >= (1+2+3)/3 = 2; the same wide back-to-back schedule achieves it.
// Comparisons are EXPECT_NEAR at 1e-9 only because simulated time is
// integer nanoseconds rendered via *1e-9 (the cluster loop's own
// conversion); the underlying tick values are exact.
TEST(ExploreOracleTest, FindsKnownOptimalMakespan) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(3);
  const auto res =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.stats.complete);
  EXPECT_NEAR(res.bestObjective, 15.0, 1e-9);
  EXPECT_EQ(res.bestObjective, res.makespanSec);
}

TEST(ExploreOracleTest, FindsKnownOptimalMeanSlowdown) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(3);
  const auto res =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::MeanSlowdown);
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(res.bestObjective, 2.0, 1e-9);
  EXPECT_EQ(res.bestObjective, res.meanSlowdown);
}

TEST(ExploreOracleTest, OptimalTraceReplaysBitIdentically) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(3);
  const auto res =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan);
  ASSERT_TRUE(res.found);
  const auto replay = replayTrace(unitConfig(), wl, profiles, res.trace);
  EXPECT_EQ(replay.makespanSec, res.makespanSec);
  EXPECT_EQ(replay.meanSlowdown, res.meanSlowdown);
  ASSERT_EQ(replay.jobs.size(), wl.jobs.size());
  for (const JobOutcome& j : replay.jobs) EXPECT_GT(j.finishSec, 0.0);
}

// Four interchangeable jobs make the search tree full of permuted paths to
// the same cluster state; the fingerprint dedup must collapse them.  Both
// searches are unpruned so the comparison isolates dedup alone.
TEST(ExploreOracleTest, DedupCutsStatesWithoutChangingTheOptimum) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(4);
  ExploreLimits withDedup;
  withDedup.prune = false;
  ExploreLimits without = withDedup;
  without.dedup = false;
  const auto a =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan, withDedup);
  const auto b =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan, without);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.bestObjective, b.bestObjective);
  EXPECT_GT(a.stats.statesDeduped, 0u);
  EXPECT_EQ(b.stats.statesDeduped, 0u);
  EXPECT_LT(a.stats.statesExplored, b.stats.statesExplored);
}

// Branch-and-bound with an admissible lower bound and strict-improvement
// incumbents must return the bit-identical optimum on every seed — on the
// real engine-profiled mix, migration costs and all.
TEST(ExploreOracleTest, PrunedEqualsUnprunedAcrossSeeds) {
  const EngineSetup setup;
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const auto wl = setup.workload(seed);
    ExploreLimits pruned;
    ExploreLimits unpruned;
    unpruned.prune = false;
    for (const auto objective :
         {ExploreObjective::Makespan, ExploreObjective::MeanSlowdown}) {
      const auto p = exploreOptimal(setup.cfg, wl, setup.profiles, objective, pruned);
      const auto u = exploreOptimal(setup.cfg, wl, setup.profiles, objective, unpruned);
      ASSERT_TRUE(p.found && p.stats.complete) << "seed " << seed;
      ASSERT_TRUE(u.found && u.stats.complete) << "seed " << seed;
      EXPECT_EQ(p.bestObjective, u.bestObjective)
          << "seed " << seed << " objective " << exploreObjectiveName(objective);
      EXPECT_GT(p.stats.branchesPruned, 0u) << "seed " << seed;
    }
  }
}

TEST(ExploreOracleTest, ExternalUpperBoundKeepsAnEqualOptimumFindable) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(3);
  const auto free =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan);
  ASSERT_TRUE(free.found);
  ExploreLimits limits;
  // Exactly the optimum: branches strictly above it are cut, an equal
  // schedule must still be found and proven.
  limits.upperBound = free.bestObjective;
  const auto res =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan, limits);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.bestObjective, free.bestObjective);
}

TEST(ExploreOracleTest, MaxStatesTruncationIsReportedHonestly) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(4);
  ExploreLimits limits;
  limits.maxStates = 10;
  const auto res =
      exploreOptimal(unitConfig(), wl, profiles, ExploreObjective::Makespan, limits);
  EXPECT_FALSE(res.stats.complete);
}

TEST(ExploreVerifierTest, SpaceInvariantsHoldOnTheUnitSpace) {
  const auto profiles = unitProfiles();
  const auto wl = unitWorkload(3);
  const auto rep = verifySpace(unitConfig(), wl, profiles);
  EXPECT_TRUE(rep.pass()) << (rep.violations.empty()
                                  ? ""
                                  : rep.violations.front().detail);
  EXPECT_TRUE(rep.stats.complete);
  EXPECT_GT(rep.totalChecks(), 0u);
}

TEST(ExploreVerifierTest, SpaceInvariantsHoldOnTheEngineMix) {
  const EngineSetup setup;
  const auto rep = verifySpace(setup.cfg, setup.workload(1), setup.profiles);
  EXPECT_TRUE(rep.pass()) << (rep.violations.empty()
                                  ? ""
                                  : rep.violations.front().detail);
  EXPECT_TRUE(rep.stats.complete);
}

// Policy audits run on an eight-node machine: the derived starvation
// bound's premise is that every class fits in at most half the cluster
// (on four nodes fcfs-rigid legitimately serializes full-width jobs and
// the bound would misfire).
TEST(ExploreVerifierTest, EveryPolicyPassesTheFullAuditWithAndWithoutBackfill) {
  const EngineSetup setup(8);
  const auto wl = setup.workload(1, 4);
  for (const std::string& name : policyNames()) {
    for (const bool backfill : {false, true}) {
      auto policy = makePolicy(name);
      PolicyVerifyOptions opts;
      opts.cluster = setup.cfg;
      opts.cluster.easyBackfill = backfill;
      const auto res = verifyPolicy(opts, wl, setup.profiles, *policy);
      EXPECT_TRUE(res.report.pass())
          << name << (backfill ? "+backfill" : "") << ": "
          << (res.report.violations.empty() ? "" : res.report.violations.front().detail);
      EXPECT_GT(res.report.totalChecks(), 0u);
      // Wait telescoping and feasibility were actually evaluated.
      EXPECT_GT(res.report.checks[static_cast<std::size_t>(Invariant::WaitTelescoping)], 0u);
      EXPECT_GT(res.report.checks[static_cast<std::size_t>(Invariant::FeasibleAllocation)],
                0u);
    }
  }
}

// The broken policy must be caught, its counterexample must name the
// violated invariant, and replaying the same run through simulateCluster
// must reproduce the violation and the recorded decision log byte for
// byte — the counterexample is a proof, not a report.
TEST(ExploreVerifierTest, MutantYieldsAReplayableCounterexample) {
  const EngineSetup setup(8);
  const auto wl = setup.workload(1, 4);
  HeadHoldMutant mutant;
  PolicyVerifyOptions opts;
  opts.cluster = setup.cfg;
  const auto res = verifyPolicy(opts, wl, setup.profiles, mutant);
  ASSERT_FALSE(res.report.pass());
  const bool starved =
      std::any_of(res.report.violations.begin(), res.report.violations.end(),
                  [](const InvariantViolation& v) {
                    return v.invariant == Invariant::NoStarvation;
                  });
  EXPECT_TRUE(starved);
  EXPECT_FALSE(res.recordJson.empty());
  EXPECT_FALSE(res.explainText.empty());

  // Independent replay: fresh recorder, fresh loop, same audit.
  obs::Recorder rec;
  ClusterConfig cc = setup.cfg;
  cc.recorder = &rec;
  HeadHoldMutant again;
  const auto metrics = simulateCluster(cc, wl, setup.profiles, again);
  const auto replayAudit = auditRecord(metrics, rec, wl, setup.profiles,
                                       derivedStarvationBound(wl, setup.profiles));
  ASSERT_EQ(replayAudit.violations.size(), res.report.violations.size());
  for (std::size_t i = 0; i < replayAudit.violations.size(); ++i) {
    EXPECT_EQ(replayAudit.violations[i].invariant, res.report.violations[i].invariant);
    EXPECT_EQ(replayAudit.violations[i].job, res.report.violations[i].job);
    EXPECT_EQ(replayAudit.violations[i].detail, res.report.violations[i].detail);
  }
  EXPECT_EQ(rec.jsonString(), res.recordJson);
}

TEST(ExploreVerifierTest, ShippedPoliciesStayUnderTheDerivedStarvationBound) {
  const EngineSetup setup(8);
  const auto wl = setup.workload(1, 4);
  const double bound = derivedStarvationBound(wl, setup.profiles);
  ASSERT_GT(bound, 0.0);
  for (const std::string& name : policyNames()) {
    auto policy = makePolicy(name);
    const auto metrics = simulateCluster(setup.cfg, wl, setup.profiles, *policy);
    for (const JobOutcome& j : metrics.jobs)
      EXPECT_LE(j.waitSec(), bound) << name << " job " << j.id;
  }
}

TEST(ExploreApiTest, FromProfilesRoundTripsHandBuiltTables) {
  const auto profiles = unitProfiles();
  EXPECT_EQ(profiles.classCount(), 1u);
  const ClassProfile& cp = profiles.of(0);
  EXPECT_EQ(cp.phases(), 2);
  EXPECT_EQ(cp.bestSec(), 5.0);
  EXPECT_EQ(cp.at(1).totalSec, 10.0);
  // remainSec suffix sums were finalized on ingestion.
  EXPECT_EQ(cp.at(2).remainingFrom(0), 5.0);
  EXPECT_EQ(cp.at(2).remainingFrom(1), 2.5);
}

TEST(ExploreApiTest, InvariantNamesAreStableSlugs) {
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    const auto inv = static_cast<Invariant>(i);
    EXPECT_NE(invariantName(inv), nullptr);
    EXPECT_NE(invariantSummary(inv), nullptr);
    const std::string slug = invariantName(inv);
    EXPECT_EQ(slug.find(' '), std::string::npos) << slug;
  }
}

} // namespace
} // namespace dps::sched
