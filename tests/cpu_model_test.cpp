#include <gtest/gtest.h>

#include "core/cpu_model.hpp"
#include "des/scheduler.hpp"

namespace dps::core {
namespace {

CpuModel::Config sharingOnly() {
  CpuModel::Config c;
  c.sharing = true;
  c.commOverhead = false;
  return c;
}

TEST(CpuModelTest, SingleStepRunsAtFullSpeed) {
  des::Scheduler sched;
  CpuModel cpu(sched, sharingOnly(), 2);
  SimTime done{};
  cpu.startStep(0, milliseconds(10), [&] { done = sched.now(); });
  sched.run();
  EXPECT_EQ(done, simEpoch() + milliseconds(10));
}

TEST(CpuModelTest, TwoStepsShareEvenly) {
  des::Scheduler sched;
  CpuModel cpu(sched, sharingOnly(), 1);
  SimTime d1{}, d2{};
  cpu.startStep(0, milliseconds(10), [&] { d1 = sched.now(); });
  cpu.startStep(0, milliseconds(10), [&] { d2 = sched.now(); });
  sched.run();
  // Both at half speed: 20 ms.
  EXPECT_EQ(d1, simEpoch() + milliseconds(20));
  EXPECT_EQ(d2, simEpoch() + milliseconds(20));
}

TEST(CpuModelTest, ShorterStepFinishesFirstThenRateRecovers) {
  des::Scheduler sched;
  CpuModel cpu(sched, sharingOnly(), 1);
  SimTime dShort{}, dLong{};
  cpu.startStep(0, milliseconds(5), [&] { dShort = sched.now(); });
  cpu.startStep(0, milliseconds(10), [&] { dLong = sched.now(); });
  sched.run();
  // Shared till the short one retires 5 ms of work at half rate (t=10ms);
  // the long one then has 5 ms left at full rate -> t=15ms.
  EXPECT_EQ(dShort, simEpoch() + milliseconds(10));
  EXPECT_EQ(dLong, simEpoch() + milliseconds(15));
}

TEST(CpuModelTest, StepsOnDifferentNodesDoNotInteract) {
  des::Scheduler sched;
  CpuModel cpu(sched, sharingOnly(), 2);
  SimTime d1{}, d2{};
  cpu.startStep(0, milliseconds(10), [&] { d1 = sched.now(); });
  cpu.startStep(1, milliseconds(10), [&] { d2 = sched.now(); });
  sched.run();
  EXPECT_EQ(d1, simEpoch() + milliseconds(10));
  EXPECT_EQ(d2, simEpoch() + milliseconds(10));
}

TEST(CpuModelTest, SharingOffRunsConcurrentStepsAtFullSpeed) {
  des::Scheduler sched;
  CpuModel::Config cfg;
  cfg.sharing = false;
  cfg.commOverhead = false;
  CpuModel cpu(sched, cfg, 1);
  SimTime d1{}, d2{};
  cpu.startStep(0, milliseconds(10), [&] { d1 = sched.now(); });
  cpu.startStep(0, milliseconds(10), [&] { d2 = sched.now(); });
  sched.run();
  EXPECT_EQ(d1, simEpoch() + milliseconds(10));
  EXPECT_EQ(d2, simEpoch() + milliseconds(10));
}

TEST(CpuModelTest, CommunicationConsumesCpu) {
  des::Scheduler sched;
  CpuModel::Config cfg;
  cfg.sharing = true;
  cfg.commOverhead = true;
  cfg.cpuPerIncoming = 0.3;
  cfg.cpuPerOutgoing = 0.1;
  CpuModel cpu(sched, cfg, 1);
  cpu.setCommActivity(0, /*in=*/1, /*out=*/1); // 40% of the CPU gone
  SimTime done{};
  cpu.startStep(0, milliseconds(6), [&] { done = sched.now(); });
  sched.run();
  EXPECT_EQ(done, simEpoch() + milliseconds(10)); // 6 ms / 0.6
}

TEST(CpuModelTest, CommActivityChangeMidStepReplans) {
  des::Scheduler sched;
  CpuModel::Config cfg;
  cfg.commOverhead = true;
  cfg.cpuPerIncoming = 0.5;
  cfg.cpuPerOutgoing = 0.0;
  CpuModel cpu(sched, cfg, 1);
  SimTime done{};
  cpu.startStep(0, milliseconds(10), [&] { done = sched.now(); });
  sched.scheduleAfter(milliseconds(4), [&] { cpu.setCommActivity(0, 1, 0); });
  sched.run();
  // 4 ms at full speed (4 ms work done), 6 ms left at 0.5 -> 12 ms more.
  EXPECT_EQ(done, simEpoch() + milliseconds(16));
}

TEST(CpuModelTest, AvailableCpuIsFloored) {
  des::Scheduler sched;
  CpuModel::Config cfg;
  cfg.commOverhead = true;
  cfg.cpuPerIncoming = 0.2;
  cfg.minAvailable = 0.05;
  CpuModel cpu(sched, cfg, 1);
  cpu.setCommActivity(0, 10, 0); // nominally 200% consumed
  EXPECT_DOUBLE_EQ(cpu.availableCpu(0), 0.05);
}

TEST(CpuModelTest, ZeroWorkStepCompletesImmediately) {
  des::Scheduler sched;
  CpuModel cpu(sched, sharingOnly(), 1);
  SimTime done{simEpoch() + milliseconds(99)};
  cpu.startStep(0, SimDuration::zero(), [&] { done = sched.now(); });
  sched.run();
  EXPECT_EQ(done, simEpoch());
}

TEST(CpuModelTest, RunningStepsCountTracks) {
  des::Scheduler sched;
  CpuModel cpu(sched, sharingOnly(), 1);
  cpu.startStep(0, milliseconds(1), [] {});
  cpu.startStep(0, milliseconds(2), [] {});
  EXPECT_EQ(cpu.runningSteps(0), 2);
  sched.run();
  EXPECT_EQ(cpu.runningSteps(0), 0);
}

} // namespace
} // namespace dps::core
