// Scenario runner: measured-vs-predicted plumbing and the statistical
// properties the reproduction relies on.
#include <gtest/gtest.h>

#include "experiments/calibration.hpp"
#include "experiments/scenario.hpp"
#include "support/stats.hpp"

namespace dps::exp {
namespace {

lu::LuConfig tinyConfig() {
  lu::LuConfig cfg;
  cfg.n = 64;
  cfg.r = 16; // 4 levels
  cfg.workers = 2;
  return cfg;
}

TEST(ScenarioTest, CalibratedProfileAbsorbsFidelityOverheads) {
  ScenarioRunner runner;
  const auto nominal = runner.settings().profile;
  const auto calibrated = runner.calibratedProfile();
  EXPECT_GT(calibrated.latency, nominal.latency);
  EXPECT_LT(calibrated.bandwidthBytesPerSec, nominal.bandwidthBytesPerSec);
}

TEST(ScenarioTest, ObservationHasBothLegs) {
  ScenarioRunner runner;
  auto obs = runner.run(tinyConfig());
  EXPECT_GT(obs.measuredSec, 0.0);
  EXPECT_GT(obs.predictedSec, 0.0);
  EXPECT_TRUE(obs.measured.trace);
  EXPECT_TRUE(obs.predicted.trace);
  EXPECT_FALSE(obs.label.empty());
}

TEST(ScenarioTest, PredictionTracksMeasurementWithinTolerance) {
  ScenarioRunner runner;
  auto obs = runner.run(tinyConfig(), {}, /*fidelitySeed=*/3);
  // The predictor uses calibrated parameters: errors should be small
  // (paper: >95% of predictions within +-12%).
  EXPECT_LT(std::abs(obs.error()), 0.15) << "measured=" << obs.measuredSec
                                         << " predicted=" << obs.predictedSec;
}

TEST(ScenarioTest, PredictionIsSeedIndependent) {
  ScenarioRunner runner;
  auto a = runner.run(tinyConfig(), {}, 1);
  auto b = runner.run(tinyConfig(), {}, 2);
  EXPECT_EQ(a.predictedSec, b.predictedSec);
  EXPECT_NE(a.measuredSec, b.measuredSec); // different machine state
}

TEST(ScenarioTest, ErrorsVaryAcrossSeedsButStayBounded) {
  ScenarioRunner runner;
  std::vector<double> errors;
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    errors.push_back(runner.run(tinyConfig(), {}, seed).error());
  // Not all identical (machine state matters).
  bool allSame = true;
  for (double e : errors)
    if (std::abs(e - errors[0]) > 1e-12) allSame = false;
  EXPECT_FALSE(allSame);
  EXPECT_GE(fractionWithin(errors, 0.15), 0.99);
}

TEST(CalibrationTest, RecoversPlainPlatformParameters) {
  // With the fidelity layer off, the probes must recover the configured
  // l and b almost exactly.
  core::SimConfig cfg;
  cfg.profile = net::ultraSparc440();
  cfg.mode = core::ExecutionMode::Pdexec;
  const auto fit = calibratePlatform(cfg);
  EXPECT_NEAR(toSeconds(fit.latency), toSeconds(cfg.profile.latency),
              toSeconds(cfg.profile.latency) * 0.1);
  EXPECT_NEAR(fit.bytesPerSec, cfg.profile.bandwidthBytesPerSec,
              cfg.profile.bandwidthBytesPerSec * 0.02);
}

TEST(CalibrationTest, MeasuredFitMatchesAnalyticFold) {
  // Measuring through the fidelity layer should land close to the
  // analytic calibration ScenarioRunner::calibratedProfile() computes.
  ScenarioRunner runner;
  const auto fit = calibratePlatform(runner.referenceConfig(/*fidelitySeed=*/7), 32);
  const auto analytic = runner.calibratedProfile();
  EXPECT_NEAR(fit.bytesPerSec, analytic.bandwidthBytesPerSec,
              analytic.bandwidthBytesPerSec * 0.05);
  EXPECT_NEAR(toSeconds(fit.latency), toSeconds(analytic.latency),
              toSeconds(analytic.latency) * 0.3);
}

TEST(CalibrationTest, ExplicitSeedOverridesAmbientConfigState) {
  ScenarioRunner runner;
  // The seed parameter, not the seed embedded in the config, decides the
  // machine state: same config + same explicit seed => identical fits.
  const auto cfg = runner.referenceConfig(/*fidelitySeed=*/1);
  const auto a = calibratePlatform(cfg, std::uint64_t{42}, 8);
  const auto b = calibratePlatform(cfg, std::uint64_t{42}, 8);
  const auto c = calibratePlatform(cfg, std::uint64_t{43}, 8);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.bytesPerSec, b.bytesPerSec);
  EXPECT_EQ(a.residual, b.residual);
  EXPECT_NE(a.smallMean, c.smallMean); // different machine state

  // The forwarding shim uses the config's own seed.
  const auto viaShim = calibratePlatform(cfg, 8);
  const auto explicitSame = calibratePlatform(cfg, cfg.fidelity.seed, 8);
  EXPECT_EQ(viaShim.latency, explicitSame.latency);
  EXPECT_EQ(viaShim.bytesPerSec, explicitSame.bytesPerSec);
}

TEST(CalibrationTest, ResidualReflectsFidelityNoise) {
  // Noiseless platform: the two-point model explains every probe exactly.
  core::SimConfig plain;
  plain.profile = net::ultraSparc440();
  plain.mode = core::ExecutionMode::Pdexec;
  const auto clean = calibratePlatform(plain, 8);
  EXPECT_LT(clean.residual, 1e-6);

  // Through the fidelity layer the per-probe jitter shows up as a strictly
  // positive (but still small) residual.
  ScenarioRunner runner;
  const auto noisy = calibratePlatform(runner.referenceConfig(7), std::uint64_t{7}, 16);
  EXPECT_GT(noisy.residual, clean.residual);
  EXPECT_LT(noisy.residual, 0.5);
}

TEST(CalibrationTest, CalibratedPredictorStaysAccurate) {
  // Swap the analytic calibration for the measured one and re-run a
  // scenario: prediction quality must hold.
  ScenarioRunner runner;
  const auto fit = calibratePlatform(runner.referenceConfig(5), 32);
  auto predictor = runner.predictorConfig();
  predictor.profile = applyCalibration(runner.settings().profile, fit);
  const auto cfg = tinyConfig();
  const auto reference = runner.runOne(cfg, true, {}, 5, runner.referenceConfig(5));
  const auto predicted = runner.runOne(cfg, false, {}, 5, predictor);
  const double err = (toSeconds(predicted.makespan) - toSeconds(reference.makespan)) /
                     toSeconds(reference.makespan);
  EXPECT_LT(std::abs(err), 0.15);
}

TEST(ScenarioTest, MalleablePlanRunsThroughBothLegs) {
  lu::LuConfig cfg = tinyConfig();
  cfg.workers = 4;
  ScenarioRunner runner;
  auto obs = runner.run(cfg, mall::AllocationPlan::killAfter({{1, {2, 3}}}));
  EXPECT_GT(obs.measuredSec, 0.0);
  EXPECT_LT(std::abs(obs.error()), 0.2);
  // Allocation shrank in both legs.
  EXPECT_EQ(obs.measured.trace->allocations().back().allocatedNodes, 2);
  EXPECT_EQ(obs.predicted.trace->allocations().back().allocatedNodes, 2);
}

} // namespace
} // namespace dps::exp
