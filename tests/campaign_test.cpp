// Campaign subsystem: parallel execution determinism, grid expansion,
// aggregation math, and the JSON/CSV emitters.
//
// The determinism test is the campaign layer's core contract — a parallel
// campaign must be *bit-identical* to a serial one — and doubles as the
// ThreadSanitizer workload (the tsan CI job runs this binary).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "experiments/campaign.hpp"

namespace dps::exp {
namespace {

lu::LuConfig tinyConfig(std::int32_t workers = 2) {
  lu::LuConfig cfg;
  cfg.n = 64;
  cfg.r = 16; // 4 levels
  cfg.workers = workers;
  return cfg;
}

Campaign tinyCampaign() {
  Campaign campaign;
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.workers = {2, 4};
  grid.variants = {{"Basic", false, false, false}, {"P", true, false, false}};
  grid.fidelitySeeds = {1, 2};
  campaign.add(grid);
  campaign.add(tinyConfig(4), mall::AllocationPlan::killAfter({{1, {2, 3}}}), 3);
  return campaign;
}

TEST(CampaignTest, ParallelMatchesSerialBitExactly) {
  const Campaign campaign = tinyCampaign();
  const CampaignResult serial = campaign.run(/*jobs=*/1);
  const CampaignResult parallel = campaign.run(/*jobs=*/4);

  ASSERT_EQ(serial.observations.size(), campaign.size());
  ASSERT_EQ(parallel.observations.size(), serial.observations.size());
  for (std::size_t i = 0; i < serial.observations.size(); ++i) {
    const Observation& a = serial.observations[i];
    const Observation& b = parallel.observations[i];
    // Same observation order...
    EXPECT_EQ(a.label, b.label) << "index " << i;
    // ...and the same doubles, bit for bit (EXPECT_EQ on double is exact).
    EXPECT_EQ(a.measuredSec, b.measuredSec) << a.label;
    EXPECT_EQ(a.predictedSec, b.predictedSec) << a.label;
    EXPECT_EQ(a.error(), b.error()) << a.label;
    EXPECT_EQ(a.measured.makespan, b.measured.makespan) << a.label;
    EXPECT_EQ(a.predicted.makespan, b.predicted.makespan) << a.label;
    EXPECT_EQ(a.measured.counters.steps, b.measured.counters.steps) << a.label;
    EXPECT_EQ(a.measured.counters.messages, b.measured.counters.messages) << a.label;
    EXPECT_EQ(a.measured.counters.networkBytes, b.measured.counters.networkBytes) << a.label;
    EXPECT_EQ(a.predicted.counters.steps, b.predicted.counters.steps) << a.label;
  }
}

TEST(CampaignTest, PoolOverloadMatchesJobsOverload) {
  const Campaign campaign = tinyCampaign();
  const CampaignResult serial = campaign.run(1);
  ThreadPool pool(3);
  const CampaignResult pooled = campaign.run(pool);
  ASSERT_EQ(pooled.observations.size(), serial.observations.size());
  for (std::size_t i = 0; i < serial.observations.size(); ++i) {
    EXPECT_EQ(serial.observations[i].measuredSec, pooled.observations[i].measuredSec);
    EXPECT_EQ(serial.observations[i].predictedSec, pooled.observations[i].predictedSec);
  }
}

TEST(CampaignTest, GridExpandsRowMajorWithSeedInnermost) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.r = {16, 32};
  grid.workers = {2, 4};
  grid.fidelitySeeds = {7, 8, 9};
  EXPECT_EQ(grid.size(), 12u);
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 12u);
  // Seed varies fastest, then workers, then r.
  EXPECT_EQ(points[0].cfg.r, 16);
  EXPECT_EQ(points[0].cfg.workers, 2);
  EXPECT_EQ(points[0].fidelitySeed, 7u);
  EXPECT_EQ(points[1].fidelitySeed, 8u);
  EXPECT_EQ(points[3].cfg.workers, 4);
  EXPECT_EQ(points[3].fidelitySeed, 7u);
  EXPECT_EQ(points[6].cfg.r, 32);
  EXPECT_EQ(points[6].cfg.workers, 2);
}

TEST(CampaignTest, GridEmptyDimensionsInheritBase) {
  SweepGrid grid;
  grid.base = tinyConfig(4);
  grid.base.pipelined = true;
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].cfg.n, 64);
  EXPECT_EQ(points[0].cfg.workers, 4);
  EXPECT_TRUE(points[0].cfg.pipelined);
  EXPECT_TRUE(points[0].plan.empty());
  EXPECT_EQ(points[0].fidelitySeed, 1u);
}

TEST(CampaignTest, AggregationMathMatchesHandComputation) {
  // Synthetic observations with easy numbers: measured {10, 20, 30},
  // predicted {11, 19, 33} -> errors {0.1, -0.05, 0.1}.
  CampaignResult result;
  const double meas[] = {10, 20, 30};
  const double pred[] = {11, 19, 33};
  for (int i = 0; i < 3; ++i) {
    Observation obs;
    obs.label = "synthetic";
    obs.measuredSec = meas[i];
    obs.predictedSec = pred[i];
    result.observations.push_back(std::move(obs));
    result.points.emplace_back();
  }
  const auto agg = result.aggregate();

  EXPECT_EQ(agg.measuredSec.count(), 3u);
  EXPECT_DOUBLE_EQ(agg.measuredSec.mean(), 20.0);
  EXPECT_DOUBLE_EQ(agg.measuredSec.min(), 10.0);
  EXPECT_DOUBLE_EQ(agg.measuredSec.max(), 30.0);
  EXPECT_DOUBLE_EQ(agg.measuredSec.stddev(), 10.0); // sample stddev of {10,20,30}

  EXPECT_DOUBLE_EQ(agg.predictedSec.mean(), 21.0);

  const double e0 = 0.1, e1 = -0.05, e2 = 0.1;
  const double mean = (e0 + e1 + e2) / 3.0;
  const double var = ((e0 - mean) * (e0 - mean) + (e1 - mean) * (e1 - mean) +
                      (e2 - mean) * (e2 - mean)) /
                     2.0; // n-1 denominator
  EXPECT_NEAR(agg.error.mean(), mean, 1e-15);
  EXPECT_NEAR(agg.error.stddev(), std::sqrt(var), 1e-15);
  EXPECT_DOUBLE_EQ(agg.error.min(), -0.05);
  EXPECT_DOUBLE_EQ(agg.error.max(), 0.1);

  const auto errs = result.errors();
  ASSERT_EQ(errs.size(), 3u);
  EXPECT_DOUBLE_EQ(errs[0], 0.1);
  EXPECT_DOUBLE_EQ(errs[1], -0.05);
}

TEST(CampaignTest, JsonAndCsvEmitters) {
  Campaign campaign;
  campaign.add(tinyConfig(), {}, 1, mall::RemovalPolicy::MigrateColumns, "tiny \"quoted\"");
  const auto result = campaign.run(1);

  std::ostringstream json;
  result.writeJson(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"observations\":["), std::string::npos);
  EXPECT_NE(j.find("\"aggregate\":{"), std::string::npos);
  EXPECT_NE(j.find("\"label\":\"tiny \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(j.find("\"measured_sec\":"), std::string::npos);
  EXPECT_EQ(j.find('\n'), std::string::npos); // single-line object
  EXPECT_EQ(result.jsonString(), j);

  std::ostringstream csv;
  result.writeCsv(csv);
  const std::string c = csv.str();
  EXPECT_NE(c.find("label,n,r,workers"), std::string::npos);
  EXPECT_NE(c.find("64,16,2"), std::string::npos);
  // RFC 4180: embedded quotes are doubled inside a quoted field.
  EXPECT_NE(c.find("\"tiny \"\"quoted\"\"\""), std::string::npos);
}

TEST(CampaignTest, EmptyCampaignEmittersAreWellFormed) {
  // An empty sweep is legal: zero observations, zero-count aggregates, and
  // emitters that still produce valid JSON / a CSV header.
  const Campaign campaign;
  EXPECT_EQ(campaign.size(), 0u);
  const auto result = campaign.run(/*jobs=*/2);
  EXPECT_TRUE(result.observations.empty());
  EXPECT_TRUE(result.errors().empty());
  const auto agg = result.aggregate();
  EXPECT_EQ(agg.measuredSec.count(), 0u);
  EXPECT_DOUBLE_EQ(agg.error.mean(), 0.0);

  const std::string j = result.jsonString();
  EXPECT_NE(j.find("\"observations\":[]"), std::string::npos);
  EXPECT_NE(j.find("\"aggregate\":{"), std::string::npos);

  std::ostringstream csv;
  result.writeCsv(csv);
  EXPECT_EQ(csv.str(),
            "label,n,r,workers,variant,plan,fidelity_seed,measured_sec,predicted_sec,error\n");
}

TEST(CampaignTest, SinglePointSweepAggregatesDegenerate) {
  // A one-point grid: aggregates collapse to that observation (stddev 0).
  Campaign campaign;
  SweepGrid grid;
  grid.base = tinyConfig();
  campaign.add(grid);
  ASSERT_EQ(campaign.size(), 1u);
  const auto result = campaign.run(1);
  const auto agg = result.aggregate();
  EXPECT_EQ(agg.measuredSec.count(), 1u);
  EXPECT_DOUBLE_EQ(agg.measuredSec.mean(), result.observations[0].measuredSec);
  EXPECT_DOUBLE_EQ(agg.measuredSec.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(agg.measuredSec.min(), agg.measuredSec.max());
  EXPECT_NE(result.jsonString().find("\"aggregate\":{\"measured_sec\":{\"count\":1"),
            std::string::npos);
}

TEST(CampaignTest, CsvQuotesLabelsContainingCommas) {
  Campaign campaign;
  campaign.add(tinyConfig(), {}, 1, mall::RemovalPolicy::MigrateColumns,
               "sweep, with, commas");
  const auto result = campaign.run(1);
  std::ostringstream csv;
  result.writeCsv(csv);
  const std::string c = csv.str();
  // The label lands in one quoted field; the commas stay inside it.
  EXPECT_NE(c.find("\"sweep, with, commas\","), std::string::npos);
  // Data row = header column count: splitting on commas outside quotes
  // yields exactly 10 fields.
  const std::string row = c.substr(c.find('\n') + 1);
  int fields = 1;
  bool quoted = false;
  for (char ch : row) {
    if (ch == '"') quoted = !quoted;
    if (ch == ',' && !quoted) ++fields;
    if (ch == '\n') break;
  }
  EXPECT_EQ(fields, 10);
}

TEST(CampaignTest, ExceptionsFromWorkersPropagate) {
  Campaign campaign;
  auto bad = tinyConfig();
  bad.r = 17; // does not divide n -> validate() throws inside the worker
  campaign.add(bad);
  campaign.add(tinyConfig());
  campaign.add(tinyConfig());
  EXPECT_THROW(campaign.run(2), Error);
  EXPECT_THROW(campaign.run(1), Error);
}

TEST(CampaignTest, PredictionLegIdenticalAcrossSeeds) {
  // The predictor ignores the fidelity seed: one campaign, many machine
  // states, a single predicted series (ScenarioTest's invariant, at the
  // campaign level and in parallel).
  Campaign campaign;
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.fidelitySeeds = {1, 2, 3, 4};
  campaign.add(grid);
  const auto result = campaign.run(4);
  for (std::size_t i = 1; i < result.observations.size(); ++i) {
    EXPECT_EQ(result.observations[i].predictedSec, result.observations[0].predictedSec);
    EXPECT_NE(result.observations[i].measuredSec, result.observations[i - 1].measuredSec);
  }
}

} // namespace
} // namespace dps::exp
