// Autocal subsystem: ParamSpace round-tripping, strategy determinism, the
// jobs=N == jobs=1 bit-identity contract of the search driver, and
// coordinate-descent convergence on a synthetic objective with a known
// optimum.
//
// The determinism test doubles as a ThreadSanitizer workload alongside
// campaign_test (concurrent engines scoring candidates on the pool).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "experiments/autocal.hpp"
#include "experiments/calibration.hpp"

namespace dps::exp {
namespace {

Candidate testCandidate() {
  Candidate c;
  c.profile = net::ultraSparc440();
  return c;
}

/// A small cross-app objective (one LU, one dynamic LU, one Jacobi) that
/// keeps full searches fast enough for a unit test.
ObjectiveSpec tinySpec() {
  ObjectiveSpec spec;
  lu::LuConfig lu;
  lu.n = 64;
  lu.r = 16;
  lu.workers = 2;
  spec.scenarios.push_back(ValidationScenario::luCase(lu, 21));
  lu::LuConfig dyn = lu;
  dyn.workers = 4;
  spec.scenarios.push_back(
      ValidationScenario::luCase(dyn, 22, mall::AllocationPlan::killAfter({{1, {2, 3}}})));
  jacobi::JacobiConfig jac;
  jac.rows = 32;
  jac.cols = 32;
  jac.sweeps = 4;
  jac.workers = 4;
  spec.scenarios.push_back(ValidationScenario::jacobiCase(jac, 23));
  return spec;
}

/// Synthetic separable objective: per-scenario signed error x[i] - opt[i],
/// so the score is minimized (to zero) exactly at `opt`.
class SyntheticObjective final : public Objective {
public:
  explicit SyntheticObjective(std::vector<double> opt) : opt_(std::move(opt)) {}
  std::size_t scenarioCount() const override { return opt_.size(); }
  std::string scenarioLabel(std::size_t i) const override {
    return "dim" + std::to_string(i);
  }
  double scenarioError(const std::vector<double>& x, std::size_t i) const override {
    return x[i] - opt_[i];
  }

private:
  std::vector<double> opt_;
};

TEST(ParamSpaceTest, ApplyEncodeRoundTrips) {
  ParamSpace space;
  space.add(Param::LatencySec, 10e-6, 1e-3)
      .add(Param::BandwidthBytesPerSec, 1e6, 100e6)
      .add(Param::PerStepOverheadSec, 0.0, 50e-6)
      .add(Param::LocalDeliverySec, 0.0, 10e-6)
      .add(Param::CpuPerOutgoingTransfer, 0.0, 0.1)
      .add(Param::CpuPerIncomingTransfer, 0.0, 0.1)
      .add(Param::ComputeScale, 0.1, 2.0)
      .add(Param::KernelScale, 0.5, 2.0);

  // Duration-valued params quantize at 1 ns, so pick exactly representable
  // values; the rest are arbitrary in-box doubles.
  const std::vector<double> x{123e-6, 42.5e6, 7e-6, 2e-6, 0.0125, 0.031, 0.75, 1.375};
  const Candidate applied = space.apply(testCandidate(), x);
  const auto back = space.encode(applied);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], std::abs(x[i]) * 1e-12 + 1e-15) << "dim " << i;

  // Non-dimension fields keep their base values.
  EXPECT_EQ(applied.profile.name, testCandidate().profile.name);

  // encode() of an untouched candidate feeds apply() back to itself.
  const auto x0 = space.encode(testCandidate());
  const Candidate same = space.apply(testCandidate(), x0);
  EXPECT_EQ(same.profile.latency, testCandidate().profile.latency);
  EXPECT_EQ(same.kernelScale, testCandidate().kernelScale);
}

TEST(ParamSpaceTest, ClampAndCenterStayInBox) {
  ParamSpace space;
  space.add(Param::LatencySec, 1e-6, 9e-6).add(Param::KernelScale, 0.5, 2.0);
  const auto clamped = space.clamp({1e-3, 0.1});
  EXPECT_DOUBLE_EQ(clamped[0], 9e-6);
  EXPECT_DOUBLE_EQ(clamped[1], 0.5);
  const auto mid = space.center();
  EXPECT_DOUBLE_EQ(mid[0], 5e-6);
  EXPECT_DOUBLE_EQ(mid[1], 1.25);
}

TEST(ParamSpaceTest, AroundOptionallyIncludesFidelityDims) {
  const Candidate warm = testCandidate();
  const ParamSpace narrow = ParamSpace::around(warm);
  EXPECT_EQ(narrow.size(), 4u);

  // The wide box adds the fidelity-layer dimensions already reachable via
  // the Param enum (ROADMAP open item).
  const ParamSpace wide = ParamSpace::around(warm, true);
  EXPECT_EQ(wide.size(), 8u);
  std::vector<Param> keys;
  for (const auto& d : wide.dims()) keys.push_back(d.key);
  for (Param p : {Param::LocalDeliverySec, Param::CpuPerOutgoingTransfer,
                  Param::CpuPerIncomingTransfer, Param::ComputeScale})
    EXPECT_NE(std::find(keys.begin(), keys.end(), p), keys.end());

  // The warm start itself lies inside the wide box (clamp is a no-op) and
  // the narrow box is a prefix of the wide one.
  const auto enc = wide.encode(warm);
  const auto clamped = wide.clamp(enc);
  for (std::size_t i = 0; i < enc.size(); ++i) EXPECT_DOUBLE_EQ(clamped[i], enc[i]);
  for (std::size_t i = 0; i < narrow.size(); ++i) {
    EXPECT_EQ(wide.dims()[i].key, narrow.dims()[i].key);
    EXPECT_DOUBLE_EQ(wide.dims()[i].lo, narrow.dims()[i].lo);
    EXPECT_DOUBLE_EQ(wide.dims()[i].hi, narrow.dims()[i].hi);
  }

  // apply/encode round-trips over the added dimensions too.
  auto x = wide.center();
  const Candidate applied = wide.apply(warm, x);
  const auto back = wide.encode(applied);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], std::abs(x[i]) * 1e-12 + 1e-9) << "dim " << i;
}

TEST(ParamSpaceTest, RejectsDegenerateAndDuplicateDims) {
  ParamSpace space;
  space.add(Param::KernelScale, 0.5, 2.0);
  EXPECT_THROW(space.add(Param::KernelScale, 0.1, 1.0), Error);
  ParamSpace bad;
  EXPECT_THROW(bad.add(Param::LatencySec, 1.0, 1.0), Error);
}

TEST(StrategyTest, RandomSearchIsSeedDeterministicAndInBounds) {
  ParamSpace space;
  space.add(Param::LatencySec, 1e-6, 1e-3).add(Param::KernelScale, 0.5, 2.0);
  SearchHistory history;
  RandomSearch a(16, 99), b(16, 99), c(16, 100);
  const auto xs = a.propose(space, history, 16);
  const auto ys = b.propose(space, history, 16);
  const auto zs = c.propose(space, history, 16);
  ASSERT_EQ(xs.size(), 16u);
  EXPECT_EQ(xs, ys);           // same seed, same proposals
  EXPECT_NE(xs, zs);           // different seed, different proposals
  for (const auto& x : xs) {
    EXPECT_GE(x[0], 1e-6);
    EXPECT_LE(x[0], 1e-3);
    EXPECT_GE(x[1], 0.5);
    EXPECT_LE(x[1], 2.0);
  }
  // Budget exhaustion: nothing left after the full batch.
  EXPECT_TRUE(a.propose(space, history, 16).empty());
}

TEST(StrategyTest, GridSearchCoversTheBoxRowMajor) {
  ParamSpace space;
  space.add(Param::LatencySec, 0.0, 1.0).add(Param::KernelScale, 0.0, 1.0);
  SearchHistory history;
  GridSearch grid(9); // 3 levels per dim
  const auto xs = grid.propose(space, history, 100);
  ASSERT_EQ(xs.size(), 9u);
  EXPECT_EQ(xs[0], (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(xs[1], (std::vector<double>{0.0, 0.5})); // last dim innermost
  EXPECT_EQ(xs[8], (std::vector<double>{1.0, 1.0}));
  EXPECT_TRUE(grid.propose(space, history, 100).empty()); // one-shot
}

TEST(StrategyTest, CoordinateDescentConvergesToKnownOptimum) {
  ParamSpace space;
  space.add(Param::ComputeScale, 0.0, 1.0).add(Param::KernelScale, 0.0, 1.0);
  const SyntheticObjective objective({0.3, 0.7});

  SearchOptions options;
  options.budget = 200;
  options.jobs = 1;
  options.warmStart = {0.9, 0.1}; // far corner
  const auto result = runCalibrationSearch(
      objective, space, {std::make_shared<CoordinateDescent>()}, options);

  const auto& best = result.best();
  EXPECT_LT(best.score, 1e-2);
  EXPECT_NEAR(best.x[0], 0.3, 1e-2);
  EXPECT_NEAR(best.x[1], 0.7, 1e-2);
  // Strictly better than the warm start it refined.
  EXPECT_LT(best.score, result.warmStart().score);
}

TEST(AutocalSearchTest, ParallelSearchMatchesSerialBitExactly) {
  const EngineSettings settings;
  const Candidate warm = testCandidate();
  const ParamSpace space = ParamSpace::around(warm);

  auto runAt = [&](unsigned jobs) {
    // Objective reference runs and the search both use `jobs` workers.
    const ScenarioObjective objective(settings, warm, space, tinySpec(), jobs);
    SearchOptions options;
    options.budget = 10;
    options.jobs = jobs;
    options.warmStart = space.encode(warm);
    // Fresh strategy instances per run: strategies are stateful.
    const std::vector<std::shared_ptr<SearchStrategy>> strategies{
        std::make_shared<RandomSearch>(4, 7), std::make_shared<CoordinateDescent>()};
    return runCalibrationSearch(objective, space, strategies, options);
  };

  const AutocalResult serial = runAt(1);
  const AutocalResult parallel = runAt(4);

  ASSERT_EQ(serial.history.records.size(), 10u);
  ASSERT_EQ(parallel.history.records.size(), serial.history.records.size());
  EXPECT_EQ(parallel.history.bestIndex, serial.history.bestIndex);
  for (std::size_t i = 0; i < serial.history.records.size(); ++i) {
    const EvalRecord& a = serial.history.records[i];
    const EvalRecord& b = parallel.history.records[i];
    EXPECT_EQ(a.strategy, b.strategy) << "eval " << i;
    // Same proposals and the same doubles, bit for bit.
    EXPECT_EQ(a.x, b.x) << "eval " << i;
    EXPECT_EQ(a.errors, b.errors) << "eval " << i;
    EXPECT_EQ(a.score, b.score) << "eval " << i;
  }
  EXPECT_EQ(serial.ranking(), parallel.ranking());
}

TEST(AutocalSearchTest, WarmStartBoundsTheBest) {
  const EngineSettings settings;
  const Candidate warm = testCandidate();
  const ParamSpace space = ParamSpace::around(warm);
  const ScenarioObjective objective(settings, warm, space, tinySpec(), 1);
  SearchOptions options;
  options.budget = 6;
  options.jobs = 1;
  options.warmStart = space.encode(warm);
  const auto result = runCalibrationSearch(
      objective, space, {std::make_shared<RandomSearch>(5, 3)}, options);
  ASSERT_TRUE(result.hasWarmStart);
  EXPECT_EQ(result.warmStart().strategy, "warm-start");
  EXPECT_LE(result.best().score, result.warmStart().score);
}

TEST(AutocalSearchTest, ReportJsonCarriesBestAndTrace) {
  const EngineSettings settings;
  const Candidate warm = testCandidate();
  const ParamSpace space = ParamSpace::around(warm);
  const ScenarioObjective objective(settings, warm, space, tinySpec(), 1);
  SearchOptions options;
  options.budget = 4;
  options.jobs = 1;
  options.warmStart = space.encode(warm);
  const auto result = runCalibrationSearch(
      objective, space, {std::make_shared<GridSearch>(3)}, options);

  std::ostringstream os;
  writeReportJson(os, result, objective, space, warm);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"warm_start\":{"), std::string::npos);
  EXPECT_NE(j.find("\"best\":{"), std::string::npos);
  EXPECT_NE(j.find("\"latency_sec\":"), std::string::npos);
  EXPECT_NE(j.find("\"per_scenario\":["), std::string::npos);
  EXPECT_NE(j.find("\"trace\":["), std::string::npos);
  EXPECT_NE(j.find("Jacobi"), std::string::npos); // cross-app labels present
  EXPECT_EQ(j.find('\n'), std::string::npos);     // single-line object
}

TEST(AutocalSearchTest, ScenarioObjectiveSeparatesReferenceAndPrediction) {
  const EngineSettings settings;
  const Candidate warm = testCandidate();
  ParamSpace space;
  space.add(Param::KernelScale, 0.5, 2.0);
  const ScenarioObjective objective(settings, warm, space, tinySpec(), 1);
  // A faster modeled kernel must predict a shorter run: the signed error
  // decreases monotonically in kernelScale on every scenario.
  for (std::size_t s = 0; s < objective.scenarioCount(); ++s) {
    const double slow = objective.scenarioError({0.8}, s);
    const double fast = objective.scenarioError({1.6}, s);
    EXPECT_GT(slow, fast) << objective.scenarioLabel(s);
    EXPECT_GT(objective.referenceSec(s), 0.0);
  }
}

} // namespace
} // namespace dps::exp
