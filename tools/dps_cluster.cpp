// dps_cluster — multi-job malleable scheduling on a shared simulated machine
// (the paper's §9 outlook at cluster scale).
//
// A seeded Poisson stream of heterogeneous LU and Jacobi jobs arrives at a
// cluster of --nodes nodes.  Each (job class, feasible allocation) pair is
// profiled once on the DPS discrete-event engine — fanned out over --jobs
// concurrent simulations — and the cluster event loop then plays the job
// stream through every scheduling policy, reporting makespan, utilization
// and per-job slowdown.  The run is bit-identical across repetitions and
// across --jobs values.
//
// With --replay the primary policy's allocation histories are additionally
// replayed through the *full* per-application simulation (the mall::
// controller migrating real column state at iteration boundaries) and the
// profile-table predictions are scored against it — closing the prediction
// loop the way the paper validates PDEXEC against direct execution.
//
// Profile tables are interpolated by default: only anchor allocations run
// on the engine, the rest are synthesized (sched::InterpolatedProfile), and
// --exact-profiles restores the exhaustive build.  Large runs: --mix scaled
// for the dense-malleability workload, --progress for wall-clock/ETA lines,
// --timeline-max to down-sample the JSON utilization timeline.
//
// Observability (--metrics / --trace): every policy's event loop records
// cluster.<policy>.* counters/gauges/histograms into one obs::Registry and
// emits per-job queued/run spans (simulated time, one pid lane per policy)
// into one Chrome trace-event file.  Both are read-only taps — the cluster
// results are bit-identical with and without them.
//
//   $ dps_cluster --nodes 8 --policy equipartition --seed 1
//   $ dps_cluster --nodes 8 --policy grow-eager --backfill --replay
//   $ dps_cluster --nodes 4096 --job-count 100000 --mix scaled --progress
//   $ dps_cluster --smoke --trace trace.json --metrics metrics.json
//
// The flight recorder (--record / --explain): every policy's loop feeds an
// obs::Recorder with its full decision audit log (admit/hold verdicts with
// typed wait reasons, backfill passes and candidates, realloc grants with
// the policy's rationale), per-job wait intervals, and a simulated-time
// timeseries sampled every --record-cadence seconds.  --record writes all
// recorders to one JSON file (render with scripts/schedule_report.py);
// --explain JOB_ID prints the causal narrative of one job under the
// primary policy.  Recording is read-only: results stay bit-identical.
//
//   $ dps_cluster --smoke --record record.json --explain 3
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/clock.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sched/cluster.hpp"
#include "sched/replay.hpp"
#include "support/cli.hpp"
#include "svc/profile_cache.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dps;

namespace {

/// Compresses an allocation history like {8,8,4,4,4} into "8x2 4x3".
std::string describeAllocs(const std::vector<std::int32_t>& allocs) {
  std::ostringstream os;
  std::size_t i = 0;
  while (i < allocs.size()) {
    std::size_t j = i;
    while (j < allocs.size() && allocs[j] == allocs[i]) ++j;
    if (i) os << " ";
    os << allocs[i] << "x" << (j - i);
    i = j;
  }
  return os.str();
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::int64_t nodes = 0, seed = 0, jobCount = 0, jobs = 0;
  std::int64_t anchors = 0, timelineMax = 0, backfillDepth = 0, explainJob = 0;
  double arrivalRate = 0, threshold = 0, recordCadence = 0;
  std::string policyName, jsonPath, mixName, metricsPath, tracePath, recordPath;
  bool smoke = false, backfill = false, replay = false;
  bool exactProfiles = false, progress = false;
  try {
    nodes = cli.integer("nodes", 8, "cluster size in nodes");
    policyName =
        cli.str("policy", "equipartition",
                "primary policy: fcfs-rigid | equipartition | efficiency-shrink | grow-eager");
    seed = cli.integer("seed", 1, "workload seed (arrivals + class mix)");
    arrivalRate = cli.real("arrival-rate", 0.15, "Poisson arrival rate [jobs/s]");
    jobCount = cli.integer("job-count", 12, "number of arriving jobs");
    threshold = cli.real("threshold", 0.5, "efficiency-shrink release threshold");
    jobs = cli.integer("jobs", 0, "concurrent profile simulations (0 = hardware concurrency)");
    jsonPath = cli.str("json", "", "write the full report to this JSON file");
    metricsPath = cli.str("metrics", "",
                          "write the obs registry snapshot (cluster.<policy>.*, svc.cache.*, "
                          "engine.*, mall.*) to this JSON file");
    tracePath = cli.str("trace", "",
                        "write a Chrome trace-event JSON (Perfetto-loadable) of every policy's "
                        "event loop, in simulated time, to this file");
    recordPath = cli.str("record", "",
                         "write every policy's flight record (decision audit log, wait "
                         "intervals, timeseries) to this JSON file");
    recordCadence = cli.real("record-cadence", 10.0,
                             "simulated-time sampling cadence [s] for the recorder timeseries "
                             "(0 disables the timeseries)");
    explainJob = cli.integer("explain", -1,
                             "print the causal narrative (arrival, waits with reasons, "
                             "reallocs, finish) of this job id under the primary policy");
    mixName = cli.str("mix", "default",
                      "job mix: default | scaled (dense malleability levels for large machines)");
    anchors = cli.integer("anchors", 0,
                          "anchor engine runs per class for interpolated profiles (0 = auto)");
    timelineMax = cli.integer("timeline-max", 0,
                              "down-sample each policy's JSON utilization timeline to at most "
                              "this many points (0 = full resolution)");
    backfillDepth = cli.integer("backfill-depth", 0,
                                "max queued jobs one backfill pass examines (0 = unlimited)");
    exactProfiles = cli.flag("exact-profiles",
                             "run every (class x allocation) point on the engine instead of "
                             "interpolating between anchors (today's exhaustive behavior)");
    progress = cli.flag("progress", "wall-clock/ETA progress on stderr for profile builds "
                                    "and event loops");
    backfill = cli.flag("backfill", "EASY backfill on the admission scan (all policies)");
    replay = cli.flag("replay", "replay the primary policy's allocation histories in-engine "
                                "and report prediction errors");
    smoke = cli.flag("smoke", "reduced CI workload (6 jobs)");
    if (cli.helpRequested()) {
      std::printf("%s", cli.helpText().c_str());
      return 0;
    }
    cli.finish();
    if (nodes < 2 || nodes > 4096) throw ConfigError("--nodes must be in [2, 4096]");
    if (jobCount < 1 || jobCount > 100000) throw ConfigError("--job-count must be >= 1");
    if (jobs < 0 || jobs > 4096) throw ConfigError("--jobs must be in [0, 4096]");
    if (arrivalRate <= 0) throw ConfigError("--arrival-rate must be positive");
    if (threshold <= 0 || threshold >= 1) throw ConfigError("--threshold must be in (0, 1)");
    if (mixName != "default" && mixName != "scaled")
      throw ConfigError("--mix must be default or scaled");
    if (anchors < 0 || anchors > 4096) throw ConfigError("--anchors must be in [0, 4096]");
    if (timelineMax < 0) throw ConfigError("--timeline-max must be >= 0");
    if (backfillDepth < 0) throw ConfigError("--backfill-depth must be >= 0");
    if (recordCadence < 0) throw ConfigError("--record-cadence must be >= 0");
    sched::makePolicy(policyName); // validates the name
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.helpText().c_str());
    return 2;
  }

  sched::WorkloadConfig wcfg;
  wcfg.seed = static_cast<std::uint64_t>(seed);
  wcfg.jobCount = smoke ? 6 : static_cast<std::int32_t>(jobCount);
  wcfg.arrivalRatePerSec = arrivalRate;
  if (mixName == "scaled")
    wcfg.classes = sched::Workload::scaledMix(static_cast<std::int32_t>(nodes));
  const auto workload =
      sched::Workload::generate(wcfg, static_cast<std::int32_t>(nodes));
  std::printf("workload: %s\n", workload.describe().c_str());

  const sched::ProfileSettings settings;
  std::size_t allocPoints = 0;
  for (const auto& k : workload.cfg.classes)
    allocPoints += sched::feasibleAllocations(k, static_cast<std::int32_t>(nodes)).size();
  std::printf("profiling %zu (class x allocation) points %s on the DPS engine (--jobs %lld)...\n",
              allocPoints, exactProfiles ? "exhaustively" : "via anchor interpolation",
              static_cast<long long>(jobs));

  // Observability surfaces for the whole run: one registry (per-policy
  // cluster.<policy>.* prefixes plus the svc.cache.* / engine.* / mall.*
  // metrics the profile build records) and one trace sink (per-policy pid
  // lanes in simulated time).  Both stay detached — and cost nothing —
  // unless their flag asked for a file.
  obs::Registry registry;
  obs::TraceSink trace;
  obs::Registry* const metrics = metricsPath.empty() ? nullptr : &registry;
  obs::TraceSink* const traceSink = tracePath.empty() ? nullptr : &trace;
  // One flight recorder per policy (they are single-run objects), created
  // only when --record or --explain asked for one.
  const bool recording = !recordPath.empty() || explainJob >= 0;
  std::vector<std::unique_ptr<obs::Recorder>> recorders;

  sched::ProfileBuildOptions popts;
  popts.interpolate = !exactProfiles;
  popts.anchors = static_cast<std::int32_t>(anchors);
  const obs::WallClock buildClock;
  std::mutex progressMu;
  obs::ProgressMeter buildMeter(buildClock, 0.5);
  if (progress) {
    popts.onRunDone = [&](std::size_t done, std::size_t planned) {
      std::lock_guard<std::mutex> lock(progressMu);
      if (done != planned && !buildMeter.due()) return;
      const double elapsed = buildMeter.elapsedSec();
      const double eta = obs::ProgressMeter::etaSec(elapsed, static_cast<double>(done),
                                                    static_cast<double>(planned));
      std::fprintf(stderr, "profile build: %zu/%zu engine runs, %.1fs elapsed, ETA %.1fs\n",
                   done, planned, elapsed, eta);
    };
  }
  // One cache serves the profile build and (with --replay) the replay pass:
  // static histories replay the exact spec the profile build simulated, so
  // those runs are hits instead of fresh engine executions.
  svc::ProfileCache cache;
  cache.attachRegistry(metrics);
  const auto profiles =
      svc::buildProfileTable(workload.cfg.classes, static_cast<std::int32_t>(nodes), settings,
                             static_cast<unsigned>(jobs), cache, popts);
  const auto& binfo = profiles.buildInfo();
  std::printf("profile table: %zu engine runs for %zu allocation points (%.1fx reduction, "
              "%.1fs)\n",
              binfo.engineRunPoints, binfo.profiledAllocs, binfo.runReduction(),
              buildClock.elapsedSec());

  Table prof("job profiles (per-phase model from PDEXEC runs)");
  prof.header({"class", "allocs", "phases", "best [s]", "state [MB]"});
  for (std::size_t c = 0; c < profiles.classCount(); ++c) {
    const auto& cp = profiles.of(c);
    std::ostringstream al;
    for (std::size_t i = 0; i < cp.allocs.size(); ++i) al << (i ? "," : "") << cp.allocs[i];
    prof.row({cp.name, al.str(), std::to_string(cp.phases()), Table::num(cp.bestSec(), 2),
              Table::num(cp.stateBytes / 1e6, 1)});
  }
  prof.print(std::cout);

  auto ccfg =
      sched::ClusterConfig::fromProfile(settings.platform, static_cast<std::int32_t>(nodes));
  ccfg.easyBackfill = backfill;
  ccfg.backfillDepth = static_cast<std::int32_t>(backfillDepth);
  std::vector<sched::ClusterMetrics> results;
  const auto policyList = sched::policyNames();
  for (std::size_t pi = 0; pi < policyList.size(); ++pi) {
    const std::string& name = policyList[pi];
    auto policy = name == "efficiency-shrink"
                      ? std::make_unique<sched::EfficiencyShrink>(threshold)
                      : sched::makePolicy(name);
    // Each policy records under its own metric prefix and trace pid lane,
    // so one registry / one trace file carries the whole comparison.
    ccfg.metrics = metrics;
    ccfg.metricsPrefix = "cluster." + name + ".";
    ccfg.trace = traceSink;
    ccfg.tracePid = static_cast<std::int32_t>(pi);
    if (recording) {
      recorders.push_back(std::make_unique<obs::Recorder>(recordCadence));
      ccfg.recorder = recorders.back().get();
    }
    if (traceSink != nullptr)
      trace.processName(static_cast<std::int32_t>(pi), "policy: " + name);
    const obs::WallClock loopClock;
    if (progress) {
      // Roughly one line per ~2% of jobs, with a floor so small runs stay
      // quiet and huge runs aren't spammed per event.
      ccfg.progressEvery = std::max<std::int64_t>(5000, workload.jobs.size());
      ccfg.onProgress = [&, name](const sched::ClusterProgress& p) {
        const double elapsed = loopClock.elapsedSec();
        const double eta = obs::ProgressMeter::etaSec(elapsed, p.finishedJobs, p.totalJobs);
        std::fprintf(stderr,
                     "%s: %d/%d jobs done (%d running, %d queued), %lld events, sim "
                     "t=%.0fs, %.1fs elapsed, ETA %.1fs\n",
                     name.c_str(), p.finishedJobs, p.totalJobs, p.runningJobs, p.queuedJobs,
                     static_cast<long long>(p.events), p.simNowSec, elapsed, eta);
      };
    }
    results.push_back(sched::simulateCluster(ccfg, workload, profiles, *policy));
    if (progress)
      std::fprintf(stderr, "%s: done in %.1fs (%lld events)\n", name.c_str(),
                   loopClock.elapsedSec(), static_cast<long long>(results.back().events));
  }

  // Ranked comparison: best mean slowdown first.
  std::vector<std::size_t> order(results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (results[a].meanSlowdown != results[b].meanSlowdown)
      return results[a].meanSlowdown < results[b].meanSlowdown;
    return a < b;
  });
  Table cmp("policy comparison (" + std::to_string(workload.jobs.size()) + " jobs, " +
            std::to_string(nodes) + " nodes, seed " + std::to_string(seed) + ")");
  cmp.header({"rank", "policy", "mean slowdown", "max slowdown", "mean wait [s]", "makespan [s]",
              "utilization", "reallocs"});
  for (std::size_t r = 0; r < order.size(); ++r) {
    const auto& m = results[order[r]];
    cmp.row({std::to_string(r + 1), m.policy, Table::num(m.meanSlowdown, 2),
             Table::num(m.maxSlowdown, 2), Table::num(m.meanWaitSec, 1),
             Table::num(m.makespanSec, 1), Table::pct(m.utilization, 1),
             std::to_string(m.reallocations)});
  }
  cmp.print(std::cout);

  // Per-job detail for the primary policy.
  const sched::ClusterMetrics* primary = nullptr;
  for (const auto& m : results)
    if (m.policy == policyName) primary = &m;
  DPS_CHECK(primary != nullptr, "primary policy missing from the result set");
  Table detail("per-job outcomes under " + policyName);
  detail.header({"job", "class", "arrival [s]", "wait [s]", "finish [s]", "slowdown", "allocs"});
  for (const auto& j : primary->jobs)
    detail.row({std::to_string(j.id), j.klass, Table::num(j.arrivalSec, 1),
                Table::num(j.waitSec(), 1), Table::num(j.finishSec, 1),
                Table::num(j.slowdown(), 2), describeAllocs(j.allocs)});
  detail.print(std::cout);

  // In-engine replay of the primary policy's allocation histories: the
  // cluster loop's profile-table predictions scored against the full
  // per-application simulation they abstract.
  sched::ReplayReport replayReport;
  if (replay) {
    std::printf("replaying %zu allocation histories in-engine (--jobs %lld)...\n",
                primary->jobs.size(), static_cast<long long>(jobs));
    sched::ReplaySettings rs;
    rs.engine = settings;
    rs.jobs = static_cast<unsigned>(jobs);
    rs.runner = svc::cachedRunner(cache);
    replayReport = sched::replaySchedule(*primary, workload, profiles, rs);
    Table rt("prediction vs in-engine replay under " + policyName);
    rt.header({"job", "class", "mode", "plan", "predicted [s]", "replayed [s]", "error",
               "bytes err"});
    for (const auto& j : replayReport.jobs) {
      const bool replayed = j.mode != sched::ReplayMode::Unsupported;
      rt.row({std::to_string(j.id), j.klass, sched::replayModeName(j.mode), j.plan,
              Table::num(j.predictedSec, 2), replayed ? Table::num(j.replayedSec, 2) : "-",
              replayed ? Table::pct(j.makespanError(), 1) : "-",
              replayed ? Table::pct(j.bytesError(), 1) : "-"});
    }
    rt.print(std::cout);
    std::printf("replayed %d of %zu jobs (%d unsupported): signed makespan error mean %+.2f%%, "
                "|mean| %.2f%%, |max| %.2f%%; migrated-bytes error over %d migrating jobs: "
                "mean %+.2f%%, |max| %.2f%%\n",
                replayReport.replayed, replayReport.jobs.size(), replayReport.unsupported,
                replayReport.meanMakespanError * 100.0, replayReport.meanAbsMakespanError * 100.0,
                replayReport.maxAbsMakespanError * 100.0, replayReport.bytesJobs,
                replayReport.meanBytesError * 100.0, replayReport.maxAbsBytesError * 100.0);
    const auto cs = cache.stats();
    std::printf("profile cache: %llu lookups, %llu engine runs, hit rate %.0f%%\n",
                static_cast<unsigned long long>(cs.lookups()),
                static_cast<unsigned long long>(cs.engineRuns), cs.hitRate() * 100.0);
  }

  if (explainJob >= 0) {
    std::size_t primaryIdx = 0;
    for (std::size_t pi = 0; pi < policyList.size(); ++pi)
      if (policyList[pi] == policyName) primaryIdx = pi;
    std::printf("\n%s",
                recorders[primaryIdx]->explain(static_cast<std::int32_t>(explainJob)).c_str());
  }

  if (!recordPath.empty()) {
    std::ofstream os(recordPath);
    if (!os) {
      std::fprintf(stderr, "cannot write record to %s\n", recordPath.c_str());
      return 1;
    }
    JsonWriter w(os);
    w.beginObject()
        .field("nodes", nodes)
        .field("seed", seed)
        .field("primary", policyName)
        .field("cadence_sec", recordCadence);
    w.key("policies").beginArray();
    for (const auto& r : recorders) w.raw(r->jsonString());
    w.endArray().endObject();
    DPS_CHECK(w.closed(), "unbalanced record JSON");
    os << "\n";
    std::printf("wrote %s (%zu decisions under %s)\n", recordPath.c_str(),
                recorders.empty() ? 0 : recorders.front()->decisionCount(),
                policyList.empty() ? "?" : policyList.front().c_str());
  }

  if (!jsonPath.empty()) {
    std::ofstream os(jsonPath);
    if (!os) {
      std::fprintf(stderr, "cannot write JSON to %s\n", jsonPath.c_str());
      return 1;
    }
    JsonWriter w(os);
    w.beginObject()
        .field("nodes", nodes)
        .field("seed", seed)
        .field("job_count", workload.jobs.size())
        .field("arrival_rate", arrivalRate)
        .field("primary", policyName)
        .field("mix", mixName)
        .field("exact_profiles", exactProfiles)
        .field("profile_engine_runs", static_cast<std::uint64_t>(binfo.engineRunPoints))
        .field("profile_allocs", static_cast<std::uint64_t>(binfo.profiledAllocs))
        .field("workload", workload.describe());
    w.key("policies").beginArray();
    for (const auto& m : results) w.raw(m.jsonString(static_cast<std::int32_t>(timelineMax)));
    w.endArray();
    if (replay) w.key("replay").raw(replayReport.jsonString());
    w.endObject();
    DPS_CHECK(w.closed(), "unbalanced cluster JSON");
    os << "\n";
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  if (!metricsPath.empty()) {
    std::ofstream os(metricsPath);
    if (!os) {
      std::fprintf(stderr, "cannot write metrics to %s\n", metricsPath.c_str());
      return 1;
    }
    os << registry.jsonString() << "\n";
    std::printf("wrote %s\n", metricsPath.c_str());
  }
  if (!tracePath.empty()) {
    if (!trace.writeFile(tracePath)) {
      std::fprintf(stderr, "cannot write trace to %s\n", tracePath.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n", tracePath.c_str(), trace.eventCount());
  }
  return 0;
}
