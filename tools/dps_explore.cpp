// dps_explore — exhaustive schedule-space search as a policy oracle and an
// invariant verifier (sched::explore).
//
// The cluster event loop is deterministic, so on a small workload every
// schedule any policy could produce lives in a finite decision space: at
// each instant, start-or-hold each queued job (at any feasible allocation)
// and keep/shrink/grow each running job at its phase boundary.  This tool
// walks that space depth-first with FNV-1a state deduplication and
// branch-and-bound on the profile table's remaining-time suffix sums, and
// uses the result two ways:
//
//   --optimality  proves the optimal makespan and mean slowdown, then
//                 scores the five shipped policy configurations (the four
//                 policies plus fcfs-rigid under EASY backfill) as a
//                 percentage of optimal.  The optimum is proven, not
//                 sampled: the pruned search is re-run unpruned and must
//                 return the bit-identical objective, and replaying the
//                 optimal decision trace through the instant machine must
//                 reproduce it exactly.
//   --verify      exhaustively checks the structural invariants over the
//                 whole reachable space (node conservation, feasible
//                 allocations, grow-from-free, shrink byte bounds, wait
//                 telescoping), audits every policy x backfill run's
//                 flight record against the full typed invariant set, and
//                 demonstrates the counterexample path with an
//                 intentionally broken mutant policy (head-hold): its
//                 violation is emitted as a flight-record decision trace
//                 (--counterexample PATH) and replay-confirmed.
//
//   $ dps_explore --smoke --json EXPLORE_smoke.json
//   $ dps_explore --optimality --max-jobs 4 --nodes 8
//   $ dps_explore --verify --counterexample counterexample.json
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "sched/cluster.hpp"
#include "sched/explore.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "svc/profile_cache.hpp"

using namespace dps;

namespace {

struct CheckRecord {
  std::string claim;
  bool ok = false;
};
std::vector<CheckRecord> g_checks;

void check(bool ok, const std::string& claim) {
  std::printf("[CHECK] %-70s %s\n", claim.c_str(), ok ? "PASS" : "FAIL");
  g_checks.push_back({claim, ok});
}

/// One of the five policy configurations the oracle scores.
struct PolicyCfg {
  std::string label;
  std::string policy;
  bool backfill = false;
};

std::vector<PolicyCfg> policyConfigs() {
  return {
      {"fcfs-rigid", "fcfs-rigid", false},
      {"fcfs-easy", "fcfs-rigid", true},
      {"equipartition", "equipartition", false},
      {"efficiency-shrink", "efficiency-shrink", false},
      {"grow-eager", "grow-eager", false},
  };
}

std::string statsJson(const sched::ExploreStats& st) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject()
      .field("states_explored", static_cast<std::uint64_t>(st.statesExplored))
      .field("states_deduped", static_cast<std::uint64_t>(st.statesDeduped))
      .field("branches_pruned", static_cast<std::uint64_t>(st.branchesPruned))
      .field("schedules_seen", static_cast<std::uint64_t>(st.schedulesSeen))
      .field("complete", st.complete)
      .endObject();
  return os.str();
}

std::string reportJson(const sched::VerifyReport& rep) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject()
      .field("pass", rep.pass())
      .field("violations", static_cast<std::uint64_t>(rep.violations.size()))
      .field("checks_total", rep.totalChecks());
  w.key("checks_per_invariant").beginObject();
  for (std::size_t i = 0; i < sched::kInvariantCount; ++i)
    w.field(sched::invariantName(static_cast<sched::Invariant>(i)), rep.checks[i]);
  w.endObject();
  w.key("violation_invariants").beginArray();
  for (const auto& v : rep.violations) w.value(sched::invariantName(v.invariant));
  w.endArray().endObject();
  return os.str();
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::int64_t nodes = 0, seed = 0, maxJobs = 0, jobs = 0, maxStates = 0;
  double arrivalRate = 0;
  std::string jsonPath, counterexamplePath;
  bool optimality = false, verify = false, smoke = false, noProve = false;
  try {
    nodes = cli.integer("nodes", 8, "cluster size in nodes (explorer scale: [4, 16])");
    seed = cli.integer("seed", 1, "workload seed (arrivals + class mix)");
    maxJobs = cli.integer("max-jobs", 4, "number of arriving jobs ([1, 8] — the space is"
                                         " exponential in this)");
    arrivalRate = cli.real("arrival-rate", 20.0,
                           "Poisson arrival rate [jobs/s] (dense by default: explorer-scale "
                           "jobs run ~1-3s, so 20/s queues everything and the policies "
                           "genuinely contend)");
    jobs = cli.integer("jobs", 0, "concurrent profile simulations (0 = hardware concurrency)");
    maxStates = cli.integer("max-states", 20000000,
                            "state-expansion cap; hitting it degrades the optimum to an "
                            "unproven upper bound");
    jsonPath = cli.str("json", "", "write the report (optimality table, verify verdicts, "
                                   "check results) to this JSON file");
    counterexamplePath = cli.str("counterexample", "",
                                 "write the mutant policy's violating flight record (the "
                                 "replayable counterexample) to this JSON file");
    optimality = cli.flag("optimality", "prove the optimal makespan / mean slowdown and score "
                                        "every policy as % of optimal");
    verify = cli.flag("verify", "exhaustively check the invariant set (space + every policy x "
                                "backfill + the head-hold mutant)");
    noProve = cli.flag("no-prove", "skip the unpruned re-search that proves the pruned optimum "
                                   "(faster on larger workloads)");
    smoke = cli.flag("smoke", "reduced CI workload (3 jobs) running both modes");
    if (cli.helpRequested()) {
      std::printf("%s", cli.helpText().c_str());
      return 0;
    }
    cli.finish();
    if (nodes < 4 || nodes > 16)
      throw ConfigError("--nodes must be in [4, 16] (exhaustive search scale)");
    if (maxJobs < 1 || maxJobs > 8) throw ConfigError("--max-jobs must be in [1, 8]");
    if (arrivalRate <= 0) throw ConfigError("--arrival-rate must be positive");
    if (jobs < 0 || jobs > 4096) throw ConfigError("--jobs must be in [0, 4096]");
    if (maxStates < 1) throw ConfigError("--max-states must be >= 1");
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.helpText().c_str());
    return 2;
  }
  if (smoke) {
    maxJobs = 3;
    optimality = verify = true;
  }
  if (!optimality && !verify) optimality = verify = true;
  // The derived starvation bound assumes every class fits in at most half
  // the machine; on smaller clusters a full-width job legitimately
  // serializes the queue and the NoStarvation audit would misfire.
  if (verify && nodes < 8) {
    std::fprintf(stderr,
                 "--verify requires --nodes >= 8: the starvation bound assumes every "
                 "class fits in at most half the machine\n");
    return 2;
  }

  sched::WorkloadConfig wcfg;
  wcfg.seed = static_cast<std::uint64_t>(seed);
  wcfg.jobCount = static_cast<std::int32_t>(maxJobs);
  wcfg.arrivalRatePerSec = arrivalRate;
  wcfg.classes = sched::exploreMix(static_cast<std::int32_t>(nodes));
  const auto workload = sched::Workload::generate(wcfg, static_cast<std::int32_t>(nodes));
  std::printf("workload: %s\n", workload.describe().c_str());

  const sched::ProfileSettings settings;
  const obs::WallClock buildClock;
  const auto profiles =
      svc::buildProfileTable(workload.cfg.classes, static_cast<std::int32_t>(nodes), settings,
                             static_cast<unsigned>(jobs));
  std::printf("profiled %zu classes in %.1fs\n", profiles.classCount(), buildClock.elapsedSec());
  Table prof("job profiles (per-phase model from PDEXEC runs)");
  prof.header({"class", "allocs", "phases", "best [s]", "worst [s]", "state [MB]"});
  for (std::size_t c = 0; c < profiles.classCount(); ++c) {
    const auto& cp = profiles.of(c);
    std::ostringstream al;
    for (std::size_t i = 0; i < cp.allocs.size(); ++i) al << (i ? "," : "") << cp.allocs[i];
    double worst = 0;
    for (const auto& p : cp.byAlloc) worst = std::max(worst, p.totalSec);
    prof.row({cp.name, al.str(), std::to_string(cp.phases()), Table::num(cp.bestSec(), 2),
              Table::num(worst, 2), Table::num(cp.stateBytes / 1e6, 1)});
  }
  prof.print(std::cout);

  const auto ccfg =
      sched::ClusterConfig::fromProfile(settings.platform, static_cast<std::int32_t>(nodes));
  sched::ExploreLimits limits;
  limits.maxStates = static_cast<std::uint64_t>(maxStates);

  // Every policy configuration's plain run (the oracle's comparison set).
  const auto cfgs = policyConfigs();
  std::vector<sched::ClusterMetrics> policyRuns;
  for (const PolicyCfg& pc : cfgs) {
    auto policy = sched::makePolicy(pc.policy);
    sched::ClusterConfig cc = ccfg;
    cc.easyBackfill = pc.backfill;
    policyRuns.push_back(sched::simulateCluster(cc, workload, profiles, *policy));
  }

  std::string optimalityJson;
  if (optimality) {
    double bestPolicyMakespan = policyRuns.front().makespanSec;
    double bestPolicySlowdown = policyRuns.front().meanSlowdown;
    for (const auto& m : policyRuns) {
      bestPolicyMakespan = std::min(bestPolicyMakespan, m.makespanSec);
      bestPolicySlowdown = std::min(bestPolicySlowdown, m.meanSlowdown);
    }

    const obs::WallClock searchClock;
    sched::ExploreLimits mkLimits = limits;
    mkLimits.upperBound = bestPolicyMakespan;
    const auto mk = sched::exploreOptimal(ccfg, workload, profiles,
                                          sched::ExploreObjective::Makespan, mkLimits);
    sched::ExploreLimits slLimits = limits;
    slLimits.upperBound = bestPolicySlowdown;
    const auto sl = sched::exploreOptimal(ccfg, workload, profiles,
                                          sched::ExploreObjective::MeanSlowdown, slLimits);
    std::printf("oracle: optimal makespan %.3fs (%llu states, %llu deduped, %llu pruned), "
                "optimal mean slowdown %.3f (%llu states) in %.1fs\n",
                mk.makespanSec, static_cast<unsigned long long>(mk.stats.statesExplored),
                static_cast<unsigned long long>(mk.stats.statesDeduped),
                static_cast<unsigned long long>(mk.stats.branchesPruned), sl.meanSlowdown,
                static_cast<unsigned long long>(sl.stats.statesExplored),
                searchClock.elapsedSec());

    check(mk.found && mk.stats.complete, "makespan optimum proven (search complete)");
    check(sl.found && sl.stats.complete, "mean-slowdown optimum proven (search complete)");
    check(mk.stats.statesExplored > 0 && sl.stats.statesExplored > 0,
          "explorer expanded states");
    check(mk.stats.branchesPruned + sl.stats.branchesPruned > 0,
          "branch-and-bound pruning fired");

    // The pruned search is exact by construction (admissible bound, strict
    // incumbents), but that argument deserves a cross-check: on a prefix
    // small enough for the *unpruned* walk to terminate (<= 3 jobs), both
    // searches must return the bit-identical objective.  Under --smoke the
    // prefix is the whole workload, so CI proves the full smoke optimum.
    if (!noProve) {
      sched::Workload proofWl = workload;
      if (proofWl.jobs.size() > 3) {
        proofWl.jobs.resize(3);
        proofWl.cfg.jobCount = 3;
        std::printf("prune-soundness proof on the first 3 jobs (the unpruned walk must "
                    "terminate)\n");
      }
      sched::ExploreLimits pruned = limits;
      sched::ExploreLimits unpruned = limits;
      unpruned.prune = false;
      for (const auto objective :
           {sched::ExploreObjective::Makespan, sched::ExploreObjective::MeanSlowdown}) {
        const auto p = sched::exploreOptimal(ccfg, proofWl, profiles, objective, pruned);
        const auto u = sched::exploreOptimal(ccfg, proofWl, profiles, objective, unpruned);
        const std::string label = sched::exploreObjectiveName(objective);
        check(p.stats.complete && u.stats.complete,
              "proof searches complete (" + label + ")");
        check(p.bestObjective == u.bestObjective,
              "pruned == unpruned optimal " + label + " (bit-identical)");
        check(u.stats.statesDeduped > 0, "state-hash dedup fired (" + label + " proof)");
      }
    }

    // Oracle self-validation: replaying the winning decision trace through
    // the instant machine reproduces the objective exactly.
    const auto mkReplay = sched::replayTrace(ccfg, workload, profiles, mk.trace);
    const auto slReplay = sched::replayTrace(ccfg, workload, profiles, sl.trace);
    check(mkReplay.makespanSec == mk.makespanSec && mkReplay.meanSlowdown == mk.meanSlowdown,
          "optimal makespan trace replays bit-identically");
    check(slReplay.makespanSec == sl.makespanSec && slReplay.meanSlowdown == sl.meanSlowdown,
          "optimal mean-slowdown trace replays bit-identically");

    Table t("policy optimality (" + std::to_string(workload.jobs.size()) + " jobs, " +
            std::to_string(nodes) + " nodes, seed " + std::to_string(seed) + ")");
    t.header({"policy", "makespan [s]", "% of optimal", "mean slowdown", "% of optimal"});
    std::ostringstream pj;
    JsonWriter pw(pj);
    pw.beginArray();
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const auto& m = policyRuns[i];
      const double mkPct = 100.0 * mk.makespanSec / m.makespanSec;
      const double slPct = 100.0 * sl.meanSlowdown / m.meanSlowdown;
      check(mk.makespanSec <= m.makespanSec + 1e-9,
            "optimal makespan <= " + cfgs[i].label + " makespan");
      check(sl.meanSlowdown <= m.meanSlowdown + 1e-9,
            "optimal mean slowdown <= " + cfgs[i].label + " mean slowdown");
      t.row({cfgs[i].label, Table::num(m.makespanSec, 2), Table::num(mkPct, 1),
             Table::num(m.meanSlowdown, 3), Table::num(slPct, 1)});
      pw.beginObject()
          .field("policy", cfgs[i].label)
          .field("backfill", cfgs[i].backfill)
          .field("makespan_sec", m.makespanSec)
          .field("mean_slowdown", m.meanSlowdown)
          .field("makespan_pct_of_optimal", mkPct)
          .field("slowdown_pct_of_optimal", slPct)
          .endObject();
    }
    pw.endArray();
    t.row({"(optimal)", Table::num(mk.makespanSec, 2), "100",
           Table::num(sl.meanSlowdown, 3), "100"});
    t.print(std::cout);

    std::ostringstream oj;
    JsonWriter ow(oj);
    ow.beginObject()
        .field("optimal_makespan_sec", mk.makespanSec)
        .field("optimal_mean_slowdown", sl.meanSlowdown)
        .field("best_policy_makespan_pct", 100.0 * mk.makespanSec / bestPolicyMakespan)
        .field("best_policy_slowdown_pct", 100.0 * sl.meanSlowdown / bestPolicySlowdown)
        .field("trace_decisions", static_cast<std::uint64_t>(mk.trace.size()));
    ow.key("makespan_search").raw(statsJson(mk.stats));
    ow.key("slowdown_search").raw(statsJson(sl.stats));
    ow.key("policies").raw(pj.str());
    ow.endObject();
    optimalityJson = oj.str();
  }

  std::string verifyJson;
  if (verify) {
    const obs::WallClock verifyClock;
    // The unpruned space walk is the expensive half of verification (no
    // B&B — pruning could hide violating states), so it runs on at most
    // the first three jobs; the policy audits below cover the full
    // workload through the flight record.
    sched::Workload spaceWorkload = workload;
    if (spaceWorkload.jobs.size() > 3) {
      spaceWorkload.jobs.resize(3);
      spaceWorkload.cfg.jobCount = 3;
      std::printf("space walk truncated to the first 3 jobs (unpruned search; the policy "
                  "audits below still cover all %zu)\n",
                  workload.jobs.size());
    }
    const auto space = sched::verifySpace(ccfg, spaceWorkload, profiles, limits);
    std::printf("verify: %llu reachable states, %llu structural checks, %zu violations "
                "(%.1fs)\n",
                static_cast<unsigned long long>(space.stats.statesExplored),
                static_cast<unsigned long long>(space.totalChecks()), space.violations.size(),
                verifyClock.elapsedSec());
    check(space.pass() && space.stats.complete,
          "space invariants hold over the entire reachable decision space");
    check(space.stats.statesExplored > 0 && space.totalChecks() > 0,
          "space verification expanded states and evaluated checks");

    const double bound = sched::derivedStarvationBound(workload, profiles);
    std::printf("derived starvation bound: %.1fs\n", bound);
    Table vt("policy invariant audits (full flight-record checks)");
    vt.header({"policy", "backfill", "checks", "violations", "max wait [s]"});
    std::ostringstream vj;
    JsonWriter vw(vj);
    vw.beginArray();
    for (const std::string& name : sched::policyNames()) {
      for (const bool backfill : {false, true}) {
        auto policy = sched::makePolicy(name);
        sched::PolicyVerifyOptions vo;
        vo.cluster = ccfg;
        vo.cluster.easyBackfill = backfill;
        const auto res = sched::verifyPolicy(vo, workload, profiles, *policy);
        check(res.report.pass(), "invariants hold: " + name +
                                     (backfill ? " +backfill" : " (no backfill)"));
        double maxWait = 0;
        for (const auto& j : res.metrics.jobs) maxWait = std::max(maxWait, j.waitSec());
        vt.row({name, backfill ? "on" : "off", std::to_string(res.report.totalChecks()),
                std::to_string(res.report.violations.size()), Table::num(maxWait, 1)});
        vw.beginObject()
            .field("policy", name)
            .field("backfill", backfill)
            .key("report")
            .raw(reportJson(res.report))
            .endObject();
      }
    }
    vw.endArray();
    vt.print(std::cout);

    // The mutant demonstrates the counterexample path: head-hold serializes
    // the queue, NoStarvation fires, and the flight record is the
    // counterexample — deterministic, so a replay reproduces it exactly.
    sched::HeadHoldMutant mutant;
    sched::PolicyVerifyOptions mo;
    mo.cluster = ccfg;
    const auto mres = sched::verifyPolicy(mo, workload, profiles, mutant);
    const bool starved = std::any_of(
        mres.report.violations.begin(), mres.report.violations.end(),
        [](const auto& v) { return v.invariant == sched::Invariant::NoStarvation; });
    double mutantMaxWait = 0;
    for (const auto& j : mres.metrics.jobs) mutantMaxWait = std::max(mutantMaxWait, j.waitSec());
    std::printf("head-hold mutant: max wait %.1fs vs bound %.1fs\n", mutantMaxWait, bound);
    check(!mres.report.pass(), "head-hold mutant violates the invariant set");
    check(starved, "head-hold mutant starves a job beyond the bound");
    const auto mres2 = sched::verifyPolicy(mo, workload, profiles, mutant);
    const bool replayConfirmed = mres2.recordJson == mres.recordJson &&
                                 mres2.report.violations.size() == mres.report.violations.size();
    check(replayConfirmed, "mutant counterexample replays byte-identically");
    if (!mres.report.pass()) {
      const auto& v = mres.report.violations.front();
      std::printf("mutant counterexample: %s — job %d at t=%.1fs: %s\n",
                  sched::invariantName(v.invariant), v.job, v.tSec, v.detail.c_str());
      if (!mres.explainText.empty()) std::printf("%s", mres.explainText.c_str());
    }
    if (!counterexamplePath.empty()) {
      std::ofstream os(counterexamplePath);
      if (!os) {
        std::fprintf(stderr, "cannot write counterexample to %s\n", counterexamplePath.c_str());
        return 1;
      }
      JsonWriter w(os);
      w.beginObject().field("policy", mutant.name()).field("replay_confirmed", replayConfirmed);
      w.key("violations").beginArray();
      for (const auto& v : mres.report.violations)
        w.beginObject()
            .field("invariant", sched::invariantName(v.invariant))
            .field("job", v.job)
            .field("t_sec", v.tSec)
            .field("detail", v.detail)
            .endObject();
      w.endArray();
      w.key("record").raw(mres.recordJson);
      w.endObject();
      DPS_CHECK(w.closed(), "unbalanced counterexample JSON");
      os << "\n";
      std::printf("wrote %s (the mutant's replayable flight record)\n",
                  counterexamplePath.c_str());
    }

    std::ostringstream sj;
    JsonWriter sw(sj);
    sw.beginObject();
    sw.key("space").beginObject();
    sw.key("stats").raw(statsJson(space.stats));
    sw.key("report").raw(reportJson(space)).endObject();
    sw.key("policies").raw(vj.str());
    sw.key("mutant")
        .beginObject()
        .field("violations", static_cast<std::uint64_t>(mres.report.violations.size()))
        .field("starvation_violation", starved)
        .field("replay_confirmed", replayConfirmed)
        .key("report")
        .raw(reportJson(mres.report))
        .endObject();
    sw.endObject();
    verifyJson = sj.str();
  }

  if (!jsonPath.empty()) {
    std::ofstream os(jsonPath);
    if (!os) {
      std::fprintf(stderr, "cannot write JSON to %s\n", jsonPath.c_str());
      return 1;
    }
    JsonWriter w(os);
    w.beginObject()
        .field("nodes", nodes)
        .field("seed", seed)
        .field("job_count", workload.jobs.size())
        .field("arrival_rate", arrivalRate)
        .field("workload", workload.describe());
    w.key("checks").beginArray();
    for (const CheckRecord& c : g_checks)
      w.beginObject().field("claim", c.claim).field("pass", c.ok).endObject();
    w.endArray();
    if (!optimalityJson.empty()) w.key("optimality").raw(optimalityJson);
    if (!verifyJson.empty()) w.key("verify").raw(verifyJson);
    w.endObject();
    DPS_CHECK(w.closed(), "unbalanced explore JSON");
    os << "\n";
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  std::size_t failed = 0;
  for (const CheckRecord& c : g_checks)
    if (!c.ok) ++failed;
  if (failed > 0) {
    std::printf("\n%zu check(s) FAILED\n", failed);
    return 1;
  }
  std::printf("\nall %zu checks passed\n", g_checks.size());
  return 0;
}
