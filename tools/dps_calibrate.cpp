// dps_calibrate — automated calibration search for the simulator's platform
// parameters (paper §4: parameters "must be measured or estimated separately
// for each target parallel machine").
//
// Pipeline: a seeded two-point ping-pong fit (exp::calibratePlatform) warm-
// starts the search; an exploration strategy (seeded random or grid) sweeps
// the bounded parameter box; coordinate descent refines the incumbent.
// Every candidate is scored on the cross-app validation set (LU at several
// sizes/block sizes, a dynamic allocation plan, a Jacobi stencil) by the
// mean |signed error| of predicted vs reference runs, with the
// (candidate, scenario) simulations fanned out over --jobs pool workers.
//
// The warm start enters the evaluation history, so the reported best fit
// never scores worse than the two-point fit; the process exits non-zero if
// that invariant is ever violated.
//
// --metrics / --trace record the tool-level observability surface: wall-
// clock spans for the warm-start fit and the search itself, plus counters
// and gauges (evaluations run, warm/best scores) in an obs::Registry.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "experiments/autocal.hpp"
#include "experiments/calibration.hpp"
#include "obs/clock.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::int64_t budget = 0, jobs = 0, seed = 0, rounds = 0;
  std::string jsonPath, strategyName, metricsPath, tracePath;
  bool wide = false;
  try {
    budget = cli.integer("budget", 32, "total candidate evaluations (warm start included)");
    jobs = cli.integer("jobs", 0, "concurrent simulations (0 = hardware concurrency)");
    seed = cli.integer("seed", 1, "search + fidelity machine-state seed");
    rounds = cli.integer("rounds", 16, "ping-pong probes per message size for the warm start");
    strategyName = cli.str("strategy", "random", "exploration strategy: random | grid");
    wide = cli.flag("wide", "also search the fidelity-layer dimensions (local delivery, "
                            "per-transfer CPU, compute scale)");
    jsonPath = cli.str("json", "", "write the full report to this JSON file");
    metricsPath = cli.str("metrics", "",
                          "write the obs registry snapshot (calibrate.*) to this JSON file");
    tracePath = cli.str("trace", "",
                        "write a Chrome trace-event JSON of the warm-start and search phases "
                        "(wall time) to this file");
    if (cli.helpRequested()) {
      std::printf("%s", cli.helpText().c_str());
      return 0;
    }
    cli.finish();
    if (budget < 1) throw ConfigError("--budget must be >= 1");
    if (jobs < 0 || jobs > 4096) throw ConfigError("--jobs must be in [0, 4096]");
    if (rounds < 1 || rounds > 65536) throw ConfigError("--rounds must be in [1, 65536]");
    if (strategyName != "random" && strategyName != "grid")
      throw ConfigError("--strategy must be 'random' or 'grid', got '" + strategyName + "'");
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.helpText().c_str());
    return 2;
  }

  const exp::EngineSettings settings; // the reference fidelity profile
  const auto fidelitySeed = static_cast<std::uint64_t>(seed);

  // Observability: wall-clock phase spans and search-level gauges, recorded
  // only when the flags asked for files.
  obs::Registry registry;
  obs::TraceSink trace;
  const obs::WallClock wall;
  if (!tracePath.empty()) trace.processName(0, "dps_calibrate");

  // Warm start: the seeded two-point ping-pong fit through the fidelity
  // layer, exactly what a calibration benchmark measures on real hardware.
  const double warmStartMicros = wall.elapsedMicros();
  const exp::ScenarioRunner runner(settings);
  const auto fit = exp::calibratePlatform(runner.referenceConfig(fidelitySeed), fidelitySeed,
                                          static_cast<int>(rounds));
  if (!tracePath.empty())
    trace.completeSpan("warm-start", "calibrate", warmStartMicros,
                       wall.elapsedMicros() - warmStartMicros, 0, 0);
  exp::Candidate warm;
  warm.profile = exp::applyCalibration(settings.profile, fit);
  std::printf("warm start (two-point fit, seed %lld): l=%.1fus  b=%.2fMB/s  residual=%.4f\n",
              static_cast<long long>(seed), toMicros(fit.latency), fit.bytesPerSec / 1e6,
              fit.residual);

  const exp::ParamSpace space = exp::ParamSpace::around(warm, wide);
  std::printf("search space: %zu dimensions%s\n", space.size(),
              wide ? " (fidelity-layer dims included)" : "");
  const exp::ScenarioObjective objective(settings, warm, space,
                                         exp::ObjectiveSpec::validationSet(),
                                         static_cast<unsigned>(jobs));

  std::printf("validation set (%zu scenarios):\n", objective.scenarioCount());
  for (std::size_t i = 0; i < objective.scenarioCount(); ++i)
    std::printf("  %-40s reference %.3fs\n", objective.scenarioLabel(i).c_str(),
                objective.referenceSec(i));

  // Budget split: 1 warm start, ~half exploration, the rest refinement.
  const auto total = static_cast<std::size_t>(budget);
  const std::size_t explore = (total - 1) / 2;
  std::vector<std::shared_ptr<exp::SearchStrategy>> strategies;
  if (strategyName == "grid")
    strategies.push_back(std::make_shared<exp::GridSearch>(explore));
  else
    strategies.push_back(std::make_shared<exp::RandomSearch>(explore, fidelitySeed));
  strategies.push_back(std::make_shared<exp::CoordinateDescent>());

  exp::SearchOptions options;
  options.budget = total;
  options.jobs = static_cast<unsigned>(jobs);
  options.warmStart = space.encode(warm);
  const double searchStartMicros = wall.elapsedMicros();
  const auto result = exp::runCalibrationSearch(objective, space, strategies, options);
  if (!tracePath.empty())
    trace.completeSpan("search", "calibrate", searchStartMicros,
                       wall.elapsedMicros() - searchStartMicros, 0, 0,
                       "{\"strategy\":\"" + strategyName +
                           "\",\"budget\":" + std::to_string(budget) + "}");

  // Ranked report: best evaluations first.
  Table t("calibration search (" + std::to_string(result.history.records.size()) +
          " evaluations, jobs=" + std::to_string(result.jobs) + ")");
  t.header({"rank", "eval#", "strategy", "mean |error|"});
  const auto order = result.ranking();
  const std::size_t show = std::min<std::size_t>(order.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& rec = result.history.records[order[i]];
    t.row({std::to_string(i + 1), std::to_string(rec.index), rec.strategy,
           Table::num(rec.score, 5)});
  }
  t.print(std::cout);

  const auto& best = result.best();
  const double warmScore = result.warmStart().score;
  const exp::Candidate fitted = space.apply(warm, best.x);
  std::printf("\nbest fit (%s, eval %zu): mean |error| %.5f vs warm start %.5f\n",
              best.strategy.c_str(), best.index, best.score, warmScore);
  std::printf("  latency        %.1f us\n", toMicros(fitted.profile.latency));
  std::printf("  bandwidth      %.2f MB/s\n", fitted.profile.bandwidthBytesPerSec / 1e6);
  std::printf("  step overhead  %.1f us\n", toMicros(fitted.profile.perStepOverhead));
  std::printf("  kernel scale   %.4f\n", fitted.kernelScale);
  std::printf("per-scenario errors of the best fit:\n");
  for (std::size_t i = 0; i < best.errors.size(); ++i)
    std::printf("  %-40s %+.4f\n", objective.scenarioLabel(i).c_str(), best.errors[i]);

  if (!jsonPath.empty()) {
    std::ofstream os(jsonPath);
    if (!os) {
      std::fprintf(stderr, "cannot write JSON to %s\n", jsonPath.c_str());
      return 1;
    }
    exp::writeReportJson(os, result, objective, space, warm);
    os << "\n";
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  if (!metricsPath.empty()) {
    registry.counter("calibrate.evaluations")
        .add(static_cast<std::uint64_t>(result.history.records.size()));
    registry.counter("calibrate.scenarios")
        .add(static_cast<std::uint64_t>(objective.scenarioCount()));
    registry.gauge("calibrate.warm_score").set(warmScore);
    registry.gauge("calibrate.best_score").set(best.score);
    registry.gauge("calibrate.wall_sec").set(wall.elapsedSec());
    std::ofstream os(metricsPath);
    if (!os) {
      std::fprintf(stderr, "cannot write metrics to %s\n", metricsPath.c_str());
      return 1;
    }
    os << registry.jsonString() << "\n";
    std::printf("wrote %s\n", metricsPath.c_str());
  }
  if (!tracePath.empty()) {
    if (!trace.writeFile(tracePath)) {
      std::fprintf(stderr, "cannot write trace to %s\n", tracePath.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n", tracePath.c_str(), trace.eventCount());
  }

  if (best.score > warmScore) {
    std::fprintf(stderr, "best fit scored worse than the warm start — search bug\n");
    return 1;
  }
  return 0;
}
